//! The per-rank progress engine: one long-lived runtime actor that drives
//! every in-flight clMPI operation as an explicit state machine.
//!
//! ### Why an engine (paper §V-A, revisited)
//!
//! The paper's runtime executes communication commands on an internal
//! thread so the host thread is never blocked. Earlier revisions of this
//! reproduction spawned one short-lived runtime thread per command; this
//! module replaces them with the paper's actual architecture: a single
//! per-rank progress thread that multiplexes **all** outstanding work —
//! chunked transfers, MPI request wrappers, collective fan-outs, file
//! I/O, and retry/backoff timers — as cooperative state machines.
//!
//! ### Execution model
//!
//! Each operation implements [`EngineOp`]: a `step` function that runs at
//! the engine's current virtual instant and returns a [`Step`] verdict.
//! The engine actor evaluates all registered machines to a fixpoint at
//! one frozen instant, then blocks until either a clock notification
//! (event completed, message matched, new submission) or one of the
//! future instants the machines asked to be woken at (retry backoff
//! expiry, injection end, staging completion) — scheduled as thread-less
//! clock alarms, never as a parked thread.
//!
//! **The engine never blocks inside a machine.** A machine that needs a
//! future instant *parks* with a wake hint; a machine that needs another
//! actor's progress parks without one and relies on the clock's notify
//! protocol. This is what the repo's CI lint enforces: this file must
//! contain no blocking wait, no blocking receive, and no virtual-time
//! sleep — the only places the data plane may touch virtual time are
//! reservation timelines and alarms.
//!
//! ### Determinism
//!
//! Submissions are handled at the submitting actor's *current* virtual
//! instant: `submit` notifies the clock, and the clock cannot advance
//! until every blocked actor — the engine included — has re-evaluated its
//! predicate. Within one engine, machines step in FIFO submission order,
//! which makes same-instant resource reservations deterministic per rank
//! (the previous one-thread-per-command design raced them).

use std::sync::Arc;

use minicl::{
    Buffer, ClError, ClResult, Device, Event, HostBuffer, UserEvent, WaitListStatus,
    CL_MPI_TRANSFER_ERROR, EXEC_STATUS_ERROR_FOR_EVENTS_IN_WAIT_LIST,
};
use minimpi::{
    CommittedType, Datatype, DropReason, MpiError, Rank, RecvResult, ReduceOp, Request, RmaHandle,
    RmaPoll, RmaRoute, Tag, Win, RMA_PATIENCE_NS,
};
use simtime::plock::Mutex;
use simtime::{
    Actor, Completion, CompletionState, MachineHandle, MachineStep, Monitor, OpSpan, SimActor,
    SimClock, SimNs,
};

use crate::obs::ChildIds;
use crate::retry::RetryPolicy;
use crate::runtime::Inner;
use crate::strategy::{PackMode, ResolvedStrategy, TransferStrategy};

/// A derived-datatype lowering attached to a transfer machine: the
/// committed type map plus the pack canonicalization mode (the TEMPI
/// axis). When present, `offset`/`size` on the op describe the *region
/// base* and the *packed wire size*; the type map routes bytes between
/// the strided device region and the contiguous wire chunks.
pub(crate) struct Lowering {
    pub ty: CommittedType,
    pub mode: PackMode,
}

impl Lowering {
    /// Cost of gathering/scattering the packed range `[lo, hi)` across
    /// PCIe segment-by-segment (the host-pack baseline): every type-map
    /// segment pays the full staged latency, which is exactly why real
    /// MPI implementations lose to device-side packing on strided types.
    fn host_staged_ns(&self, pcie: &minicl::PcieModel, lo: usize, hi: usize) -> SimNs {
        self.ty
            .segments_for_packed_range(lo, hi)
            .iter()
            .map(|&(_, len)| pcie.staged_ns(len, true))
            .sum()
    }
}

// ----------------------------------------------------------------------
// Engine core
// ----------------------------------------------------------------------

/// Verdict of one [`EngineOp::step`] call at the engine's current instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// The machine changed state and wants to be stepped again at the
    /// same instant (e.g. it finished one phase and the next phase can
    /// start immediately).
    Progressed,
    /// Nothing to do right now. `Some(t)` asks for a wake-up at the
    /// strictly-future instant `t` (a retry backoff expiry, an injection
    /// end); `None` means "wake me on any cross-actor notification"
    /// (an event completing, a message matching). A machine that could
    /// settle at the current instant must progress instead of parking.
    Park(Option<SimNs>),
    /// The operation finished (its event settled, its result landed);
    /// the engine unregisters it.
    Done,
}

/// An in-flight operation driven by the engine. Implementations are
/// state machines: `step` runs at a frozen virtual instant, must never
/// block, and reports how the engine should treat the machine next.
pub trait EngineOp: Send {
    /// Diagnostic label (mirrors the thread names of the old
    /// one-thread-per-command design).
    fn label(&self) -> &str;

    /// Advance the machine as far as possible at virtual instant `now`.
    /// `actor` is the engine's own clock actor: machines may use it to
    /// post non-blocking MPI calls, but must never park it.
    fn step(&mut self, now: SimNs, actor: &Actor) -> Step;
}

#[derive(Default)]
struct EngineShared {
    /// Newly submitted machines, drained by the worker at the
    /// submission instant.
    incoming: Vec<Box<dyn EngineOp>>,
    /// Machines submitted but not yet finished (incoming + registered).
    active: usize,
    /// Once set, the worker exits as soon as every machine finishes.
    shutdown: bool,
}

/// The per-rank progress engine. Owns one scheduled machine
/// (`EngineCore`) that steps every registered [`EngineOp`] to
/// completion — on a dedicated thread in thread mode, on its shard's
/// worker in event mode.
pub struct Engine {
    shared: Arc<Monitor<EngineShared>>,
    handle: Mutex<Option<MachineHandle>>,
}

impl Engine {
    /// Start an engine on `clock`. The calling thread must be a running
    /// clock actor (the registration rule): the machine's executing actor
    /// is registered here, before any thread spawns. `hint` places the
    /// machine in event mode (the runtime passes the MPI rank).
    pub fn start(clock: &SimClock, label: String, hint: u64) -> Engine {
        let shared = Arc::new(Monitor::new(clock.clone(), EngineShared::default()));
        let core = EngineCore {
            shared: shared.clone(),
            ops: Vec::new(),
        };
        let handle = clock.spawn_machine(hint, label, Box::new(core));
        Engine {
            shared,
            handle: Mutex::new(Some(handle)),
        }
    }

    /// Register a machine. It is first stepped at the caller's current
    /// virtual instant — the clock cannot advance past the submission
    /// before the engine has seen it.
    pub fn submit(&self, op: Box<dyn EngineOp>) {
        self.shared.with(|s| {
            assert!(!s.shutdown, "clMPI engine already shut down");
            s.active += 1;
            s.incoming.push(op);
        });
    }

    /// Block `actor` (in virtual time) until every submitted machine has
    /// finished.
    pub fn wait_idle(&self, actor: &Actor) {
        self.shared
            // checker-allow(non-blocking-engine): host-side control-plane
            // API (shutdown quiescence); it blocks the *calling* actor,
            // never the engine worker thread.
            .wait_labeled(actor, "clmpi shutdown", |s| (s.active == 0).then_some(()));
    }

    /// Number of machines submitted but not yet finished.
    pub fn active(&self) -> usize {
        self.shared.peek(|s| s.active)
    }

    /// True when called from the thread executing the engine's machine
    /// (used by drop paths that must not block the scheduler).
    pub(crate) fn on_worker_thread(&self) -> bool {
        self.handle
            .lock()
            .as_ref()
            .is_some_and(|h| h.on_worker_thread())
    }
}

impl Drop for Engine {
    /// Ask the machine to exit once its ops drain, and reap it. Callers
    /// must drain first ([`Engine::wait_idle`]) unless dropping from the
    /// machine's own executor — joining an engine that still owes
    /// virtual-time progress would stall the clock.
    fn drop(&mut self) {
        if std::thread::panicking() {
            return; // clock is poisoned; the machine dies on its own
        }
        self.shared.with(|s| s.shutdown = true);
        // Take the handle out before reaping: an `if let` scrutinee would
        // keep the MutexGuard alive across the join, deadlocking any
        // `on_worker_thread` call from the machine being joined.
        let h = self.handle.lock().take();
        if let Some(h) = h {
            h.reap();
        }
    }
}

/// The engine loop as a resumable machine. Every poll happens at a frozen
/// virtual instant (the executor is runnable while stepping); between
/// polls the executor is a blocked actor whose scheduled alarms are
/// eligible to drive the clock. Identical code serves both execution
/// modes, which is what makes their virtual timings indistinguishable.
struct EngineCore {
    shared: Arc<Monitor<EngineShared>>,
    ops: Vec<Box<dyn EngineOp>>,
}

impl SimActor for EngineCore {
    fn wait_label(&self) -> &'static str {
        "clmpi engine"
    }

    fn poll(&mut self, now: SimNs, actor: &Actor) -> MachineStep {
        if let Some(mut newly) = self.shared.try_now(|s| {
            if s.incoming.is_empty() {
                None
            } else {
                Some(std::mem::take(&mut s.incoming))
            }
        }) {
            self.ops.append(&mut newly);
        }
        // Count only actual op-state transitions (progress and
        // completions): idle re-polls of parked ops are free, so the
        // count is a deterministic property of the scenario, not of the
        // host's wake-up pattern.
        let mut transitions: u64 = 0;
        // The wake hint reported upward: the earliest future instant any
        // op asked for *in the final, progress-free pass* (earlier passes
        // recompute it — a parked op re-reports its hint every pass).
        let mut hint: Option<SimNs> = None;
        let mut made_progress = true;
        while made_progress {
            made_progress = false;
            hint = None;
            let mut i = 0;
            while i < self.ops.len() {
                match self.ops[i].step(now, actor) {
                    Step::Progressed => {
                        transitions += 1;
                        made_progress = true;
                        i += 1;
                    }
                    Step::Park(h) => {
                        if let Some(t) = h {
                            debug_assert!(t > now, "machines must progress, not park, when due");
                            if t > now {
                                hint = Some(hint.map_or(t, |c: SimNs| c.min(t)));
                            }
                        }
                        i += 1;
                    }
                    Step::Done => {
                        let op = self.ops.remove(i);
                        // Decrement while the op is still alive: dropping
                        // it may release the last handle on the runtime,
                        // whose drop path reads this counter.
                        self.shared.with(|s| s.active -= 1);
                        drop(op);
                        transitions += 1;
                        made_progress = true;
                    }
                }
            }
        }
        if transitions > 0 {
            actor.clock().count_events(transitions);
        }
        if self.ops.is_empty() && self.shared.peek(|s| s.shutdown && s.incoming.is_empty()) {
            MachineStep::Done
        } else {
            MachineStep::Pending(hint)
        }
    }
}

// ----------------------------------------------------------------------
// Shared building blocks
// ----------------------------------------------------------------------

/// Poll a wait list the way the old runtime threads waited on it, but
/// without blocking: `Pending` until *every* event settles, then the
/// first failure in list order (poisoning), or `Ready`.
pub(crate) fn poll_deps(wait: &[Event]) -> WaitListStatus {
    Event::poll_wait_list(wait)
}

/// Like [`poll_deps`] but ignoring failures — the collective and file
/// commands historically only ordered on settlement, not success.
pub(crate) fn deps_settled(wait: &[Event]) -> bool {
    !matches!(Event::poll_wait_list(wait), WaitListStatus::Pending)
}

/// Record a top-level operation envelope on the rank's `host` track:
/// submit instant → settlement instant, with the op's stable id,
/// category, payload size, outcome, and transfer endpoints. This is the
/// span exporters pair into causal send→recv links.
#[allow(clippy::too_many_arguments)]
pub(crate) fn record_envelope(
    inner: &Inner,
    ids: &ChildIds,
    cat: &str,
    name: String,
    start: SimNs,
    end: SimNs,
    bytes: u64,
    ok: bool,
    peer: Option<Rank>,
    tag: Option<Tag>,
) {
    let rank = inner.comm.rank();
    inner.trace.record_op(OpSpan {
        id: ids.op(),
        parent: None,
        rank: rank as u32,
        track: format!("r{rank}.host"),
        name,
        cat: cat.into(),
        start,
        end: end.max(start),
        bytes,
        ok,
        peer: peer.map(|p| p as u32),
        tag,
    });
}

/// Record an `op.failure` span: the instant an operation observed a dead
/// peer process (ULFM `MPI_ERR_PROC_FAILED` class), attributed to the
/// op's id block. Summarized into the recovery counters of
/// [`crate::obs::ObsSummary`], separately from the ordinary op counters.
pub(crate) fn record_failure(inner: &Inner, ids: &mut ChildIds, peer: Rank, at: SimNs) {
    record_child(
        inner,
        ids,
        "host",
        format!("proc-failure r{peer}"),
        "op.failure",
        at,
        at,
        0,
        false,
    );
}

/// Record a child span (a chunk, retry, drop, or staging hop) under its
/// operation's id block, on the rank's `net` or `dev` track.
#[allow(clippy::too_many_arguments)]
pub(crate) fn record_child(
    inner: &Inner,
    ids: &mut ChildIds,
    track_kind: &str,
    name: String,
    cat: &str,
    start: SimNs,
    end: SimNs,
    bytes: u64,
    ok: bool,
) {
    let rank = inner.comm.rank();
    inner.trace.record_op(OpSpan {
        id: ids.child(),
        parent: Some(ids.op()),
        rank: rank as u32,
        track: format!("r{rank}.{track_kind}"),
        name,
        cat: cat.into(),
        start,
        end: end.max(start),
        bytes,
        ok,
        peer: None,
        tag: None,
    });
}

/// One wire chunk injected reliably: on sender-observed loss (the
/// fabric's link-layer NACK model) the machine enters a virtual-time
/// backoff and retransmits when the engine wakes it, up to the policy's
/// attempt budget. Feeds the degradation latch and the fault counters.
/// This replaces the old eager retry loop: the backoff is now a real
/// engine-scheduled timer instead of a pre-dated reservation.
pub(crate) struct ReliableChunkSend {
    dst: Rank,
    wire_tag: Tag,
    bytes: Vec<u8>,
    duration: Option<SimNs>,
    policy: RetryPolicy,
    attempt: u32,
    /// Set when the drop was caused by a dead endpoint: retransmission
    /// can never succeed, so the machine fails without burning retries.
    peer_dead: bool,
    state: ChunkState,
}

enum ChunkState {
    /// Ready to inject, no earlier than `earliest`.
    Ready { earliest: SimNs },
    /// Posted to the fabric's deferred-send arbiter; polling the request
    /// until the grant decides the injection's fate.
    Injecting { req: Request, earliest: SimNs },
    /// Last injection was dropped; retransmit at `resume_at`.
    Backoff { resume_at: SimNs },
    /// Injection succeeded; the wire is busy until `done_at`.
    Sent { done_at: SimNs },
    /// Retry budget exhausted; the failure settles at `at` (the end of
    /// the last burned injection, as the old path charged it).
    Failed { at: SimNs },
}

/// Verdict of one [`ReliableChunkSend::step`].
pub(crate) enum ChunkStep {
    /// State changed; step again at the same instant.
    Progressed,
    /// Waiting for a future instant (backoff expiry or failure charge).
    Park(SimNs),
    /// Delivered; injection ended at the given instant.
    Sent(SimNs),
    /// Permanently failed at the given instant.
    Failed(SimNs),
}

impl ReliableChunkSend {
    /// Snapshot the runtime's current retry policy (per chunk, as the
    /// old path read it per call) and arm the first injection.
    pub(crate) fn new(
        inner: &Inner,
        dst: Rank,
        wire_tag: Tag,
        bytes: Vec<u8>,
        earliest: SimNs,
        duration: Option<SimNs>,
    ) -> Self {
        ReliableChunkSend {
            dst,
            wire_tag,
            bytes,
            duration,
            policy: *inner.retry.lock(),
            attempt: 0,
            peer_dead: false,
            state: ChunkState::Ready { earliest },
        }
    }

    /// Payload size of this chunk in bytes.
    pub(crate) fn len(&self) -> usize {
        self.bytes.len()
    }

    /// The error the old path returned on budget exhaustion; a dead-peer
    /// failure is classified as an `MPI_ERR_PROC_FAILED`-class error
    /// instead.
    pub(crate) fn exhaustion_error(&self) -> ClError {
        if self.peer_dead {
            return ClError::TransferFailed(format!(
                "{}: chunk on tag {} undeliverable",
                MpiError::ProcFailed { rank: self.dst },
                self.wire_tag
            ));
        }
        ClError::TransferFailed(format!(
            "chunk to rank {} lost {} time(s) on tag {}; retry budget exhausted",
            self.dst, self.policy.max_attempts, self.wire_tag
        ))
    }

    pub(crate) fn step(
        &mut self,
        inner: &Inner,
        ids: &mut ChildIds,
        now: SimNs,
        actor: &Actor,
    ) -> ChunkStep {
        if let ChunkState::Injecting { ref req, earliest } = self.state {
            // `known_completion` pumps the arbiter; `None` means the
            // grant instant has not passed yet. The arbiter clamps a
            // stale `earliest` up to the posting instant, so the park
            // hint must be strictly future relative to `now` — one tick
            // later the pump's strict `earliest < now` test admits the
            // grant.
            let Some(done) = req.known_completion() else {
                return ChunkStep::Park(now.max(earliest) + 1);
            };
            let delivered = req.delivered();
            let reason = req.drop_reason();
            return self.settle_injection(inner, ids, earliest, done, delivered, reason);
        }
        match self.state {
            ChunkState::Injecting { .. } => unreachable!("handled above"),
            ChunkState::Ready { earliest } => {
                self.attempt += 1;
                let req = inner.comm.isend_raw(
                    actor,
                    self.dst,
                    self.wire_tag,
                    Datatype::ClMem,
                    &self.bytes,
                    earliest,
                    self.duration,
                );
                self.state = ChunkState::Injecting { req, earliest };
                ChunkStep::Progressed
            }
            ChunkState::Backoff { resume_at } => {
                if now >= resume_at {
                    self.state = ChunkState::Ready {
                        earliest: resume_at,
                    };
                    ChunkStep::Progressed
                } else {
                    ChunkStep::Park(resume_at)
                }
            }
            ChunkState::Sent { done_at } => ChunkStep::Sent(done_at),
            ChunkState::Failed { at } => {
                if now >= at {
                    ChunkStep::Failed(at)
                } else {
                    // Charge the time actually spent trying before the
                    // failure becomes observable (the old path slept to
                    // the last injection's end before erroring).
                    ChunkStep::Park(at)
                }
            }
        }
    }

    /// The injection's grant arrived: run the fate logic the eager path
    /// used to run inline — delivery, dead-peer fast-fail, degradation
    /// latch, retry budget.
    fn settle_injection(
        &mut self,
        inner: &Inner,
        ids: &mut ChildIds,
        earliest: SimNs,
        done: SimNs,
        delivered: bool,
        reason: Option<DropReason>,
    ) -> ChunkStep {
        if delivered {
            inner.fault_state.lock().consecutive_drops = 0;
            self.state = ChunkState::Sent { done_at: done };
            return ChunkStep::Progressed;
        }
        // The chunk burned link time but never reached the peer.
        let reason = reason.unwrap_or(DropReason::Random);
        if let Some(stats) = inner.stats.lock().as_ref() {
            stats.note_drop(reason);
        }
        record_child(
            inner,
            ids,
            "net",
            format!("drop#{}→r{}", self.attempt, self.dst),
            "drop",
            earliest,
            done,
            self.bytes.len() as u64,
            false,
        );
        if reason == DropReason::NodeDown {
            // Dead endpoint: no retransmission can ever succeed.
            // Fail the transfer now — this is what keeps
            // machines from hanging out a full retry budget per
            // chunk after a rank failure.
            if let Some(stats) = inner.stats.lock().as_ref() {
                stats.note_proc_failure();
            }
            record_failure(inner, ids, self.dst, done);
            self.peer_dead = true;
            self.state = ChunkState::Failed { at: done };
            return ChunkStep::Progressed;
        }
        let newly_degraded = {
            let mut fs = inner.fault_state.lock();
            fs.consecutive_drops += 1;
            if !fs.degraded && fs.consecutive_drops >= self.policy.degrade_after {
                fs.degraded = true;
                true
            } else {
                false
            }
        };
        let fault_lane = format!("r{}.fault", inner.comm.rank());
        if newly_degraded {
            if let Some(stats) = inner.stats.lock().as_ref() {
                stats.note_degraded();
            }
            inner
                .trace
                .record(fault_lane.as_str(), "degrade pipelined→pinned", done, done);
            record_child(
                inner,
                ids,
                "net",
                "degrade pipelined→pinned".into(),
                "degrade",
                done,
                done,
                0,
                false,
            );
        }
        if self.attempt == self.policy.max_attempts {
            if let Some(stats) = inner.stats.lock().as_ref() {
                stats.note_failure();
            }
            self.state = ChunkState::Failed { at: done };
            return ChunkStep::Progressed;
        }
        let backoff = self.policy.backoff_ns(self.attempt);
        inner.trace.record(
            fault_lane.as_str(),
            format!("retry#{}→r{}", self.attempt, self.dst),
            done,
            done.saturating_add(backoff),
        );
        if let Some(stats) = inner.stats.lock().as_ref() {
            stats.note_retry();
        }
        record_child(
            inner,
            ids,
            "net",
            format!("retry#{}→r{}", self.attempt, self.dst),
            "retry",
            done,
            done.saturating_add(backoff),
            self.bytes.len() as u64,
            true,
        );
        self.state = ChunkState::Backoff {
            resume_at: done.saturating_add(backoff),
        };
        ChunkStep::Progressed
    }
}

// ----------------------------------------------------------------------
// Device-buffer transfer machines (enqueue_send/recv_buffer, gpu-aware)
// ----------------------------------------------------------------------

/// Where a machine reports its final result when a caller is blocked on
/// it (the gpu-aware comparator paths). The event carries the same
/// outcome for event-ordered callers.
pub(crate) type ResultSlot = Arc<Monitor<Option<ClResult<()>>>>;

/// `clEnqueueSendBuffer` as a state machine: wait list → chunked
/// device→host staging and reliable network injection → completion at
/// the last injection's end.
pub(crate) struct SendOp {
    inner: Arc<Inner>,
    device: Device,
    buf: Buffer,
    offset: usize,
    size: usize,
    dst: Rank,
    user_tag: Tag,
    wire_tag: Tag,
    strategy: TransferStrategy,
    /// Derived-datatype lowering: `Some` routes every chunk through the
    /// type map (and, for the device modes, through a pack kernel).
    lowering: Option<Lowering>,
    wait: Vec<Event>,
    ue: UserEvent,
    result: Option<ResultSlot>,
    label: String,
    ids: ChildIds,
    submit_ns: SimNs,
    state: SendState,
}

enum SendState {
    WaitDeps,
    // Boxed: the in-flight chunk machine dwarfs the other variants.
    // With a device-pack lowering each chunk first runs a PackStage (a
    // pack kernel reserved on the compute timeline) before its d2h hop;
    // the reservation is backdated, so chunk k's pack overlaps chunk
    // k−1's wire time without the machine ever blocking.
    Transfer(Box<SendTransfer>),
    Finish { done_at: SimNs },
    Done,
}

struct SendTransfer {
    t0: SimNs,
    chunks: Vec<(usize, usize)>,
    next_chunk: usize,
    first: bool,
    /// The in-flight chunk and the trace spans to record once it lands.
    current: Option<(ReliableChunkSend, ChunkTrace)>,
    done_at: SimNs,
}

enum ChunkTrace {
    /// Mapped path: one fused map+send span from `t0`.
    Mapped { t0: SimNs },
    /// Staged path: the d2h span, then a net span from `d2h.1`.
    Staged { d2h: (SimNs, SimNs) },
    /// Device-pack path: the pack-kernel span, its d2h hop, then the net
    /// span from `d2h.1`.
    Packed {
        pack: (SimNs, SimNs),
        d2h: (SimNs, SimNs),
    },
}

impl SendOp {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        inner: Arc<Inner>,
        device: Device,
        buf: Buffer,
        offset: usize,
        size: usize,
        dst: Rank,
        user_tag: Tag,
        wire_tag: Tag,
        strategy: TransferStrategy,
        lowering: Option<Lowering>,
        wait: Vec<Event>,
        ue: UserEvent,
        result: Option<ResultSlot>,
        ids: ChildIds,
        submit_ns: SimNs,
    ) -> Self {
        let label = format!("clmpi-send-r{}-t{user_tag}", inner.comm.rank());
        SendOp {
            inner,
            device,
            buf,
            offset,
            size,
            dst,
            user_tag,
            wire_tag,
            strategy,
            lowering,
            wait,
            ue,
            result,
            label,
            ids,
            submit_ns,
            state: SendState::WaitDeps,
        }
    }

    /// Gather the packed range `[lo, hi)` of the lowered type out of the
    /// device buffer (the simulated pack kernel's data movement; timing
    /// is charged separately on the relevant resource timeline).
    /// Associated fn: callable while `self.state` is mutably borrowed.
    fn gather_packed(
        buf: &Buffer,
        offset: usize,
        ty: &CommittedType,
        lo: usize,
        hi: usize,
    ) -> Vec<u8> {
        let mut out = Vec::with_capacity(hi - lo);
        for (soff, slen) in ty.segments_for_packed_range(lo, hi) {
            out.extend_from_slice(
                &buf.load(offset + soff, slen)
                    .expect("range checked at enqueue"),
            );
        }
        out
    }

    fn settle(&mut self, outcome: ClResult<()>, at: SimNs) -> Step {
        if let Some(slot) = &self.result {
            slot.with(|s| *s = Some(outcome.clone()));
        }
        let ok = outcome.is_ok();
        // A transfer-level failure is a completed (failed) probe: report
        // it so the adaptive tuner retires the strategy instead of
        // starving on it. A poisoned wait list says nothing about the
        // strategy, so it is not reported.
        if !ok && !matches!(outcome, Err(ClError::EventFailed { .. })) {
            if let Some(sel) = self.inner.adaptive.lock().as_ref() {
                sel.observe_failure(self.size, self.strategy);
            }
        }
        record_envelope(
            &self.inner,
            &self.ids,
            "op.send",
            format!("send→{}#{}", self.dst, self.user_tag),
            self.submit_ns,
            at,
            self.size as u64,
            ok,
            Some(self.dst),
            Some(self.wire_tag),
        );
        self.inner
            .note_settled(ok, if ok { self.size as u64 } else { 0 }, 0);
        match outcome {
            Ok(()) => self.ue.set_complete(at).expect("send event completed once"),
            Err(ClError::EventFailed { .. }) => self
                .ue
                .set_failed(at, EXEC_STATUS_ERROR_FOR_EVENTS_IN_WAIT_LIST)
                .expect("send event settled once"),
            Err(_) => self
                .ue
                .set_failed(at, CL_MPI_TRANSFER_ERROR)
                .expect("send event settled once"),
        }
        self.state = SendState::Done;
        Step::Done
    }
}

impl EngineOp for SendOp {
    fn label(&self) -> &str {
        &self.label
    }

    fn step(&mut self, now: SimNs, actor: &Actor) -> Step {
        loop {
            match &mut self.state {
                SendState::WaitDeps => match poll_deps(&self.wait) {
                    WaitListStatus::Pending => return Step::Park(None),
                    WaitListStatus::Failed { code, label } => {
                        // A failed dependency poisons this command, as
                        // the queue executor does for ordinary commands.
                        return self.settle(Err(ClError::EventFailed { code, label }), now);
                    }
                    WaitListStatus::Ready => {
                        let plan = ResolvedStrategy::plan(self.strategy, self.size);
                        self.state = SendState::Transfer(Box::new(SendTransfer {
                            t0: now,
                            chunks: plan.chunks,
                            next_chunk: 0,
                            first: true,
                            current: None,
                            done_at: now,
                        }));
                    }
                },
                SendState::Transfer(tr) => {
                    if tr.current.is_none()
                        && tr.first
                        && tr.next_chunk >= tr.chunks.len()
                        && !matches!(self.strategy, TransferStrategy::Mapped)
                    {
                        // Zero-byte staged send: nothing to inject.
                        let (t0, done_at) = (tr.t0, tr.done_at);
                        if let Some(stats) = self.inner.stats.lock().as_ref() {
                            stats.record(
                                "send",
                                &self.strategy.name(),
                                self.size,
                                done_at.saturating_sub(t0),
                            );
                        }
                        if let Some(sel) = self.inner.adaptive.lock().as_ref() {
                            sel.observe(self.size, self.strategy, done_at.saturating_sub(t0));
                        }
                        self.state = SendState::Finish { done_at };
                        continue;
                    }
                    if tr.current.is_none() {
                        let pcie = self.device.spec().pcie;
                        let (chunk, spans) = match self.strategy {
                            TransferStrategy::Mapped => {
                                // Map the whole region once; the NIC
                                // streams straight through PCIe, fused
                                // with the injection.
                                let bytes = self
                                    .buf
                                    .load(self.offset, self.size)
                                    .expect("range checked at enqueue");
                                let stream =
                                    (self.size as f64 * 1e9 / pcie.mapped_bps).round() as SimNs;
                                let fused = self
                                    .inner
                                    .cfg
                                    .cluster
                                    .link
                                    .injection_ns(self.size)
                                    .max(stream);
                                tr.next_chunk = tr.chunks.len(); // single fused transfer
                                (
                                    ReliableChunkSend::new(
                                        &self.inner,
                                        self.dst,
                                        self.wire_tag,
                                        bytes,
                                        tr.t0 + pcie.map_setup_ns,
                                        Some(fused),
                                    ),
                                    ChunkTrace::Mapped { t0: tr.t0 },
                                )
                            }
                            TransferStrategy::Pinned | TransferStrategy::Pipelined(_) => {
                                // Staged path: chunks flow d2h (pinned
                                // staging) then network. Retransmits
                                // re-inject from the host staging copy —
                                // the d2h stage (and any pack kernel) is
                                // not repeated.
                                let (coff, clen) = tr.chunks[tr.next_chunk];
                                tr.next_chunk += 1;
                                let earliest = if tr.first {
                                    tr.t0 + pcie.pin_setup_ns
                                } else {
                                    tr.t0
                                };
                                tr.first = false;
                                match &self.lowering {
                                    None => {
                                        let bytes = self
                                            .buf
                                            .load(self.offset + coff, clen)
                                            .expect("range checked at enqueue");
                                        let d2h = self
                                            .device
                                            .d2h_link()
                                            .reserve_duration(pcie.staged_ns(clen, true), earliest);
                                        (
                                            ReliableChunkSend::new(
                                                &self.inner,
                                                self.dst,
                                                self.wire_tag,
                                                bytes,
                                                d2h.end,
                                                None,
                                            ),
                                            ChunkTrace::Staged {
                                                d2h: (d2h.start, d2h.end),
                                            },
                                        )
                                    }
                                    Some(l) if l.mode == PackMode::HostPack => {
                                        // Host-pack baseline: the type
                                        // map is gathered segment-by-
                                        // segment across PCIe — every
                                        // segment pays the staged
                                        // latency.
                                        let cost = l.host_staged_ns(&pcie, coff, coff + clen);
                                        let bytes = Self::gather_packed(
                                            &self.buf,
                                            self.offset,
                                            &l.ty,
                                            coff,
                                            coff + clen,
                                        );
                                        let d2h =
                                            self.device.d2h_link().reserve_duration(cost, earliest);
                                        (
                                            ReliableChunkSend::new(
                                                &self.inner,
                                                self.dst,
                                                self.wire_tag,
                                                bytes,
                                                d2h.end,
                                                None,
                                            ),
                                            ChunkTrace::Staged {
                                                d2h: (d2h.start, d2h.end),
                                            },
                                        )
                                    }
                                    Some(_) => {
                                        // PackStage: an on-device pack
                                        // kernel canonicalizes this
                                        // chunk's type-map slice into
                                        // contiguous staging memory
                                        // (reads strided + writes packed
                                        // = 2× the bytes through device
                                        // memory), then a single d2h hop
                                        // moves the packed bytes. Both
                                        // are backdated reservations, so
                                        // chunk k's pack overlaps chunk
                                        // k−1's wire time.
                                        let spec = self.device.spec();
                                        let pack = self.device.pack_link().reserve_duration(
                                            spec.membound_kernel_ns(2 * clen),
                                            earliest,
                                        );
                                        let l = self.lowering.as_ref().expect("lowered op");
                                        let bytes = Self::gather_packed(
                                            &self.buf,
                                            self.offset,
                                            &l.ty,
                                            coff,
                                            coff + clen,
                                        );
                                        let d2h = self
                                            .device
                                            .d2h_link()
                                            .reserve_duration(pcie.staged_ns(clen, true), pack.end);
                                        (
                                            ReliableChunkSend::new(
                                                &self.inner,
                                                self.dst,
                                                self.wire_tag,
                                                bytes,
                                                d2h.end,
                                                None,
                                            ),
                                            ChunkTrace::Packed {
                                                pack: (pack.start, pack.end),
                                                d2h: (d2h.start, d2h.end),
                                            },
                                        )
                                    }
                                }
                            }
                            TransferStrategy::Auto | TransferStrategy::Rma => {
                                unreachable!("strategy resolved before dispatch; rma is one-sided")
                            }
                        };
                        tr.current = Some((chunk, spans));
                    }
                    let (chunk, _) = tr.current.as_mut().expect("chunk armed above");
                    match chunk.step(&self.inner, &mut self.ids, now, actor) {
                        ChunkStep::Progressed => continue,
                        ChunkStep::Park(t) => return Step::Park(Some(t)),
                        ChunkStep::Failed(at) => {
                            let (chunk, _) = tr.current.take().expect("chunk present");
                            return self.settle(Err(chunk.exhaustion_error()), at);
                        }
                        ChunkStep::Sent(done) => {
                            let lane = format!("r{}.comm", self.inner.comm.rank());
                            let (chunk, spans) = tr.current.take().expect("chunk present");
                            let clen = chunk.bytes.len() as u64;
                            match spans {
                                ChunkTrace::Mapped { t0 } => {
                                    self.inner.trace.record(
                                        lane.as_str(),
                                        format!("map+send→{}", self.dst),
                                        t0,
                                        done,
                                    );
                                    record_child(
                                        &self.inner,
                                        &mut self.ids,
                                        "net",
                                        format!("map+send→{}", self.dst),
                                        "chunk",
                                        t0,
                                        done,
                                        clen,
                                        true,
                                    );
                                }
                                ChunkTrace::Staged { d2h } => {
                                    self.inner.trace.record(lane.as_str(), "d2h", d2h.0, d2h.1);
                                    self.inner.trace.record(
                                        lane.as_str(),
                                        format!("net→{}", self.dst),
                                        d2h.1,
                                        done,
                                    );
                                    record_child(
                                        &self.inner,
                                        &mut self.ids,
                                        "dev",
                                        "d2h".into(),
                                        "stage.d2h",
                                        d2h.0,
                                        d2h.1,
                                        clen,
                                        true,
                                    );
                                    record_child(
                                        &self.inner,
                                        &mut self.ids,
                                        "net",
                                        format!("net→{}", self.dst),
                                        "chunk",
                                        d2h.1,
                                        done,
                                        clen,
                                        true,
                                    );
                                }
                                ChunkTrace::Packed { pack, d2h } => {
                                    self.inner
                                        .trace
                                        .record(lane.as_str(), "pack", pack.0, pack.1);
                                    self.inner.trace.record(lane.as_str(), "d2h", d2h.0, d2h.1);
                                    self.inner.trace.record(
                                        lane.as_str(),
                                        format!("net→{}", self.dst),
                                        d2h.1,
                                        done,
                                    );
                                    record_child(
                                        &self.inner,
                                        &mut self.ids,
                                        "dev",
                                        "pack".into(),
                                        "stage.pack",
                                        pack.0,
                                        pack.1,
                                        clen,
                                        true,
                                    );
                                    record_child(
                                        &self.inner,
                                        &mut self.ids,
                                        "dev",
                                        "d2h".into(),
                                        "stage.d2h",
                                        d2h.0,
                                        d2h.1,
                                        clen,
                                        true,
                                    );
                                    record_child(
                                        &self.inner,
                                        &mut self.ids,
                                        "net",
                                        format!("net→{}", self.dst),
                                        "chunk",
                                        d2h.1,
                                        done,
                                        clen,
                                        true,
                                    );
                                }
                            }
                            tr.done_at = done;
                            if tr.next_chunk < tr.chunks.len() {
                                continue; // arm the next chunk at this instant
                            }
                            let (t0, done_at) = (tr.t0, tr.done_at);
                            if let Some(stats) = self.inner.stats.lock().as_ref() {
                                stats.record(
                                    "send",
                                    &self.strategy.name(),
                                    self.size,
                                    done_at.saturating_sub(t0),
                                );
                            }
                            if let Some(sel) = self.inner.adaptive.lock().as_ref() {
                                sel.observe(self.size, self.strategy, done_at.saturating_sub(t0));
                            }
                            self.state = SendState::Finish { done_at };
                        }
                    }
                }
                SendState::Finish { done_at } => {
                    let done_at = *done_at;
                    if now >= done_at {
                        return self.settle(Ok(()), done_at);
                    }
                    return Step::Park(Some(done_at));
                }
                SendState::Done => return Step::Done,
            }
        }
    }
}

/// `clEnqueueRecvBuffer` as a state machine: wait list → staging setup →
/// per-chunk matched receive (with the retry policy's patience under a
/// fault plan) → host→device staging → completion with the data in
/// device memory.
pub(crate) struct RecvOp {
    inner: Arc<Inner>,
    device: Device,
    buf: Buffer,
    offset: usize,
    size: usize,
    src: Rank,
    user_tag: Tag,
    wire_tag: Tag,
    strategy: TransferStrategy,
    /// Derived-datatype lowering: `Some` scatters every arrived chunk
    /// through the type map (and, for the device modes, through an
    /// unpack kernel first).
    lowering: Option<Lowering>,
    wait: Vec<Event>,
    ue: UserEvent,
    result: Option<ResultSlot>,
    label: String,
    ids: ChildIds,
    submit_ns: SimNs,
    received: usize,
    recv_t0: SimNs,
    state: RecvState,
}

enum RecvState {
    WaitDeps,
    /// One-time staging setup cost, paid up front (it overlaps the wait
    /// for the first chunk, which it precedes).
    Setup {
        resume_at: SimNs,
    },
    /// A posted matched-receive; `deadline` is the per-chunk patience
    /// under a fault plan (never set on a perfect fabric, keeping the
    /// zero-fault path exactly the seed's).
    AwaitChunk {
        req: Request,
        deadline: Option<(SimNs, SimNs)>, // (expiry instant, patience)
    },
    /// Staged path: the chunk is crossing PCIe until `end`.
    Stage {
        data: Vec<u8>,
        start: SimNs,
        end: SimNs,
    },
    /// Device-unpack lowering: the packed chunk landed in device staging
    /// memory at the end of its h2d hop; an unpack kernel scatters it
    /// through the type map until `end` (reserved on the compute
    /// timeline, so it serializes with the app's own kernels).
    UnpackStage {
        data: Vec<u8>,
        start: SimNs,
        end: SimNs,
    },
    /// Mapped path: the post-transfer unmap cost.
    Unmap {
        resume_at: SimNs,
    },
    Done,
}

impl RecvOp {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        inner: Arc<Inner>,
        device: Device,
        buf: Buffer,
        offset: usize,
        size: usize,
        src: Rank,
        user_tag: Tag,
        wire_tag: Tag,
        strategy: TransferStrategy,
        lowering: Option<Lowering>,
        wait: Vec<Event>,
        ue: UserEvent,
        result: Option<ResultSlot>,
        ids: ChildIds,
        submit_ns: SimNs,
    ) -> Self {
        let label = format!("clmpi-recv-r{}-t{user_tag}", inner.comm.rank());
        RecvOp {
            inner,
            device,
            buf,
            offset,
            size,
            src,
            user_tag,
            wire_tag,
            strategy,
            lowering,
            wait,
            ue,
            result,
            label,
            ids,
            submit_ns,
            received: 0,
            recv_t0: 0,
            state: RecvState::WaitDeps,
        }
    }

    /// Scatter an arrived packed chunk (packed offset `lo`) into the
    /// strided destination region through the type map.
    fn scatter_packed(&self, lo: usize, data: &[u8]) {
        let l = self.lowering.as_ref().expect("lowered op");
        let mut pos = 0usize;
        for (soff, slen) in l.ty.segments_for_packed_range(lo, lo + data.len()) {
            self.buf
                .store(self.offset + soff, &data[pos..pos + slen])
                .expect("range checked at enqueue");
            pos += slen;
        }
    }

    fn settle(&mut self, outcome: ClResult<()>, at: SimNs) -> Step {
        if let Some(slot) = &self.result {
            slot.with(|s| *s = Some(outcome.clone()));
        }
        let ok = outcome.is_ok();
        // As on the send side: a transfer failure (receiver timeout,
        // overflow) retires the probed strategy; a poisoned wait list
        // does not.
        if !ok && !matches!(outcome, Err(ClError::EventFailed { .. })) {
            if let Some(sel) = self.inner.adaptive.lock().as_ref() {
                sel.observe_failure(self.size, self.strategy);
            }
        }
        record_envelope(
            &self.inner,
            &self.ids,
            "op.recv",
            format!("recv←{}#{}", self.src, self.user_tag),
            self.submit_ns,
            at,
            self.size as u64,
            ok,
            Some(self.src),
            Some(self.wire_tag),
        );
        self.inner
            .note_settled(ok, 0, if ok { self.size as u64 } else { 0 });
        match outcome {
            Ok(()) => self.ue.set_complete(at).expect("recv event completed once"),
            Err(ClError::EventFailed { .. }) => self
                .ue
                .set_failed(at, EXEC_STATUS_ERROR_FOR_EVENTS_IN_WAIT_LIST)
                .expect("recv event settled once"),
            Err(_) => self
                .ue
                .set_failed(at, CL_MPI_TRANSFER_ERROR)
                .expect("recv event settled once"),
        }
        self.state = RecvState::Done;
        Step::Done
    }

    /// Post the matched receive for the next wire chunk. On a perfect
    /// fabric the machine waits indefinitely (the seed's blocking-recv
    /// semantics); under a fault plan it applies the policy's per-chunk
    /// patience, read per chunk as the old path did.
    fn post_chunk(&mut self, now: SimNs, actor: &Actor) {
        let req = self
            .inner
            .comm
            .irecv(actor, Some(self.src), Some(self.wire_tag));
        let deadline = self.inner.comm.world().has_faults().then(|| {
            let patience = self.inner.retry.lock().chunk_timeout_ns;
            (now + patience, patience)
        });
        self.state = RecvState::AwaitChunk { req, deadline };
    }

    /// Store a fully arrived-and-staged chunk, then either post the next
    /// receive or finish the command.
    fn chunk_done(&mut self, len: usize, now: SimNs, actor: &Actor) -> Option<Step> {
        self.received += len;
        if self.received < self.size {
            self.post_chunk(now, actor);
            return None;
        }
        if self.strategy == TransferStrategy::Mapped {
            // Unmap after the MPI transfer completes (map → MPI → unmap,
            // the paper's mapped implementation).
            let pcie = self.device.spec().pcie;
            self.state = RecvState::Unmap {
                resume_at: now + pcie.map_setup_ns,
            };
            return None;
        }
        Some(self.finish(now))
    }

    fn finish(&mut self, now: SimNs) -> Step {
        if let Some(stats) = self.inner.stats.lock().as_ref() {
            stats.record(
                "recv",
                &self.strategy.name(),
                self.size,
                now.saturating_sub(self.recv_t0),
            );
        }
        if let Some(sel) = self.inner.adaptive.lock().as_ref() {
            sel.observe(self.size, self.strategy, now.saturating_sub(self.recv_t0));
        }
        self.settle(Ok(()), now)
    }
}

impl EngineOp for RecvOp {
    fn label(&self) -> &str {
        &self.label
    }

    fn step(&mut self, now: SimNs, actor: &Actor) -> Step {
        loop {
            match &mut self.state {
                RecvState::WaitDeps => match poll_deps(&self.wait) {
                    WaitListStatus::Pending => return Step::Park(None),
                    WaitListStatus::Failed { code, label } => {
                        return self.settle(Err(ClError::EventFailed { code, label }), now);
                    }
                    WaitListStatus::Ready => {
                        self.recv_t0 = now;
                        let pcie = self.device.spec().pcie;
                        let setup = match self.strategy {
                            TransferStrategy::Mapped => pcie.map_setup_ns,
                            TransferStrategy::Pinned | TransferStrategy::Pipelined(_) => {
                                pcie.pin_setup_ns
                            }
                            TransferStrategy::Auto | TransferStrategy::Rma => {
                                unreachable!("strategy resolved before dispatch; rma is one-sided")
                            }
                        };
                        self.state = RecvState::Setup {
                            resume_at: now + setup,
                        };
                    }
                },
                RecvState::Setup { resume_at } => {
                    let resume_at = *resume_at;
                    if now < resume_at {
                        return Step::Park(Some(resume_at));
                    }
                    // `chunk_done(0)` posts the first receive, or — for a
                    // zero-byte transfer — goes straight to completion.
                    if let Some(step) = self.chunk_done(0, now, actor) {
                        return step;
                    }
                }
                RecvState::AwaitChunk { req, deadline } => {
                    let deadline = *deadline;
                    if let Some(result) = req.test(actor) {
                        let r = result.expect("matched receive yields a payload");
                        if self.received + r.data.len() > self.size {
                            return self.settle(
                                Err(ClError::TransferFailed(format!(
                                    "clMPI transfer overflow: got {} bytes into a {}-byte receive",
                                    self.received + r.data.len(),
                                    self.size
                                ))),
                                now,
                            );
                        }
                        match self.strategy {
                            TransferStrategy::Mapped => {
                                // Zero-copy: the NIC already wrote through
                                // PCIe during the sender-fused stream; the
                                // data is usable at arrival.
                                self.buf
                                    .store(self.offset + self.received, &r.data)
                                    .expect("range checked at enqueue");
                                if let Some(step) = self.chunk_done(r.data.len(), now, actor) {
                                    return step;
                                }
                            }
                            TransferStrategy::Pinned | TransferStrategy::Pipelined(_) => {
                                let pcie = self.device.spec().pcie;
                                // Host-unpack baseline: the chunk's
                                // type-map segments are scattered one by
                                // one across PCIe, each paying the
                                // staged latency. Every other path moves
                                // the packed bytes in one hop.
                                let cost = match &self.lowering {
                                    Some(l) if l.mode == PackMode::HostPack => l.host_staged_ns(
                                        &pcie,
                                        self.received,
                                        self.received + r.data.len(),
                                    ),
                                    _ => pcie.staged_ns(r.data.len(), true),
                                };
                                let h2d = self.device.h2d_link().reserve_duration(cost, now);
                                self.state = RecvState::Stage {
                                    data: r.data,
                                    start: h2d.start,
                                    end: h2d.end,
                                };
                            }
                            TransferStrategy::Auto | TransferStrategy::Rma => unreachable!(),
                        }
                    } else if let Some(at) = req.known_completion() {
                        // Matched, in flight: the arrival instant is
                        // committed (even past a deadline — retrying a
                        // message the fabric already delivered would
                        // duplicate it).
                        return Step::Park(Some(at.max(now + 1)));
                    } else if self.inner.peer_failed(self.src, now) {
                        // The source process is dead and nothing is in
                        // flight: no chunk can ever match. Abort now
                        // instead of waiting out the chunk patience.
                        let state = std::mem::replace(&mut self.state, RecvState::Done);
                        if let RecvState::AwaitChunk { req, .. } = state {
                            req.cancel();
                        }
                        if let Some(stats) = self.inner.stats.lock().as_ref() {
                            stats.note_proc_failure();
                        }
                        record_failure(&self.inner, &mut self.ids, self.src, now);
                        return self.settle(
                            Err(ClError::TransferFailed(format!(
                                "receive from rank {} (tag {}): {}",
                                self.src,
                                self.wire_tag,
                                MpiError::ProcFailed { rank: self.src }
                            ))),
                            now,
                        );
                    } else if let Some((at, patience)) = deadline {
                        if now >= at {
                            let state = std::mem::replace(&mut self.state, RecvState::Done);
                            if let RecvState::AwaitChunk { req, .. } = state {
                                req.cancel();
                            }
                            if let Some(stats) = self.inner.stats.lock().as_ref() {
                                stats.note_failure();
                            }
                            let e = MpiError::Timeout {
                                waited_ns: patience,
                            };
                            return self.settle(
                                Err(ClError::TransferFailed(format!(
                                    "receive from rank {} (tag {}) gave up: {e}",
                                    self.src, self.wire_tag
                                ))),
                                now,
                            );
                        }
                        return Step::Park(Some(at));
                    } else {
                        return Step::Park(None);
                    }
                }
                RecvState::Stage { end, .. } => {
                    let end = *end;
                    if now < end {
                        return Step::Park(Some(end));
                    }
                    let state = std::mem::replace(&mut self.state, RecvState::Done);
                    let RecvState::Stage { data, start, end } = state else {
                        unreachable!("matched above")
                    };
                    let lane = format!("r{}.comm", self.inner.comm.rank());
                    self.inner.trace.record(lane.as_str(), "h2d", start, end);
                    record_child(
                        &self.inner,
                        &mut self.ids,
                        "dev",
                        "h2d".into(),
                        "stage.h2d",
                        start,
                        end,
                        data.len() as u64,
                        true,
                    );
                    match &self.lowering {
                        None => {
                            self.buf
                                .store(self.offset + self.received, &data)
                                .expect("range checked at enqueue");
                        }
                        Some(l) if l.mode == PackMode::HostPack => {
                            // The host already scattered segment-by-
                            // segment during the h2d hop.
                            self.scatter_packed(self.received, &data);
                        }
                        Some(_) => {
                            // UnpackStage: the packed chunk landed in
                            // device staging memory; an unpack kernel
                            // (2× the bytes through device memory)
                            // scatters it through the type map.
                            let spec = self.device.spec();
                            let unpack = self
                                .device
                                .pack_link()
                                .reserve_duration(spec.membound_kernel_ns(2 * data.len()), end);
                            self.state = RecvState::UnpackStage {
                                data,
                                start: unpack.start,
                                end: unpack.end,
                            };
                            continue;
                        }
                    }
                    if let Some(step) = self.chunk_done(data.len(), now, actor) {
                        return step;
                    }
                }
                RecvState::UnpackStage { end, .. } => {
                    let end = *end;
                    if now < end {
                        return Step::Park(Some(end));
                    }
                    let state = std::mem::replace(&mut self.state, RecvState::Done);
                    let RecvState::UnpackStage { data, start, end } = state else {
                        unreachable!("matched above")
                    };
                    self.scatter_packed(self.received, &data);
                    let lane = format!("r{}.comm", self.inner.comm.rank());
                    self.inner.trace.record(lane.as_str(), "unpack", start, end);
                    record_child(
                        &self.inner,
                        &mut self.ids,
                        "dev",
                        "unpack".into(),
                        "stage.unpack",
                        start,
                        end,
                        data.len() as u64,
                        true,
                    );
                    if let Some(step) = self.chunk_done(data.len(), now, actor) {
                        return step;
                    }
                }
                RecvState::Unmap { resume_at } => {
                    let resume_at = *resume_at;
                    if now < resume_at {
                        return Step::Park(Some(resume_at));
                    }
                    return self.finish(now);
                }
                RecvState::Done => return Step::Done,
            }
        }
    }
}

// ----------------------------------------------------------------------
// Host-buffer MPI_CL_MEM machines (isend_cl / irecv_cl) and
// clCreateEventFromMPIRequest
// ----------------------------------------------------------------------

/// Where [`HostSendOp`] reports its outcome: the last injection's end
/// instant on success, the exhaustion error on permanent failure.
pub(crate) type SendSlot = Arc<Monitor<Option<ClResult<SimNs>>>>;

/// `MPI_Isend` on `MPI_CL_MEM` (`isend_cl`): the payload chunks are
/// injected reliably from the submission instant. In a zero-fault run
/// every chunk is accepted in the first burst and the machine retires
/// immediately — an un-awaited request never delays shutdown, exactly as
/// before. Under faults, retries continue on engine timers after the
/// caller has resumed.
pub(crate) struct HostSendOp {
    inner: Arc<Inner>,
    dst: Rank,
    wire_tag: Tag,
    /// Per-chunk payload and duration override, prepared on the caller.
    chunks: Vec<(Vec<u8>, Option<SimNs>)>,
    next_chunk: usize,
    current: Option<ReliableChunkSend>,
    done_at: SimNs,
    t0: Option<SimNs>,
    /// Handshake: flipped after the machine's first pass so the caller
    /// resumes only once the initial injection burst is on the wire
    /// (keeping the fabric reservation order of the old inline path).
    issued: Arc<Monitor<bool>>,
    issued_done: bool,
    slot: SendSlot,
    label: String,
    ids: ChildIds,
    submit_ns: SimNs,
    total_bytes: u64,
}

impl HostSendOp {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        inner: Arc<Inner>,
        dst: Rank,
        wire_tag: Tag,
        chunks: Vec<(Vec<u8>, Option<SimNs>)>,
        issued: Arc<Monitor<bool>>,
        slot: SendSlot,
        ids: ChildIds,
        submit_ns: SimNs,
    ) -> Self {
        let label = format!("clmpi-isend-r{}", inner.comm.rank());
        let total_bytes = chunks.iter().map(|(b, _)| b.len() as u64).sum();
        HostSendOp {
            inner,
            dst,
            wire_tag,
            chunks,
            next_chunk: 0,
            current: None,
            done_at: 0,
            t0: None,
            issued,
            issued_done: false,
            slot,
            label,
            ids,
            submit_ns,
            total_bytes,
        }
    }

    /// Record the operation envelope and counters at settlement.
    fn finish(&mut self, ok: bool, at: SimNs) {
        record_envelope(
            &self.inner,
            &self.ids,
            "op.isend",
            format!("isend→{}", self.dst),
            self.submit_ns,
            at,
            self.total_bytes,
            ok,
            Some(self.dst),
            Some(self.wire_tag),
        );
        self.inner
            .note_settled(ok, if ok { self.total_bytes } else { 0 }, 0);
    }

    fn drive(&mut self, now: SimNs, actor: &Actor) -> Step {
        let t0 = *self.t0.get_or_insert(now);
        loop {
            if self.current.is_none() {
                if self.next_chunk == self.chunks.len() {
                    self.finish(true, self.done_at.max(self.submit_ns));
                    self.slot.with(|s| *s = Some(Ok(self.done_at)));
                    return Step::Done;
                }
                let (bytes, duration) = {
                    let entry = &mut self.chunks[self.next_chunk];
                    (std::mem::take(&mut entry.0), entry.1)
                };
                self.next_chunk += 1;
                self.current = Some(ReliableChunkSend::new(
                    &self.inner,
                    self.dst,
                    self.wire_tag,
                    bytes,
                    t0,
                    duration,
                ));
            }
            let chunk = self.current.as_mut().expect("chunk armed above");
            match chunk.step(&self.inner, &mut self.ids, now, actor) {
                ChunkStep::Progressed => continue,
                ChunkStep::Park(at) => return Step::Park(Some(at)),
                ChunkStep::Sent(done) => {
                    let clen = chunk.bytes.len() as u64;
                    record_child(
                        &self.inner,
                        &mut self.ids,
                        "net",
                        format!("net→{}", self.dst),
                        "chunk",
                        t0,
                        done,
                        clen,
                        true,
                    );
                    self.done_at = self.done_at.max(done);
                    self.current = None;
                }
                ChunkStep::Failed(at) => {
                    let chunk = self.current.take().expect("chunk armed above");
                    self.finish(false, at);
                    self.slot.with(|s| *s = Some(Err(chunk.exhaustion_error())));
                    return Step::Done;
                }
            }
        }
    }
}

impl EngineOp for HostSendOp {
    fn label(&self) -> &str {
        &self.label
    }

    fn step(&mut self, now: SimNs, actor: &Actor) -> Step {
        let verdict = self.drive(now, actor);
        if !self.issued_done {
            self.issued_done = true;
            self.issued.with(|i| *i = true);
        }
        verdict
    }
}

/// `MPI_Irecv` into `MPI_CL_MEM` (`irecv_cl`): matched receives are
/// posted back-to-back into the pinned host landing buffer; the returned
/// event completes when the full payload has arrived.
pub(crate) struct IrecvClOp {
    inner: Arc<Inner>,
    src: Rank,
    wire_tag: Tag,
    size: usize,
    host: HostBuffer,
    received: usize,
    ue: UserEvent,
    label: String,
    ids: ChildIds,
    submit_ns: SimNs,
    state: IrecvState,
}

enum IrecvState {
    Start,
    AwaitChunk {
        req: Request,
        deadline: Option<(SimNs, SimNs)>, // (expiry instant, patience)
    },
    Done,
}

impl IrecvClOp {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        inner: Arc<Inner>,
        src: Rank,
        wire_tag: Tag,
        size: usize,
        host: HostBuffer,
        ue: UserEvent,
        ids: ChildIds,
        submit_ns: SimNs,
    ) -> Self {
        let label = format!("clmpi-irecv-r{}", inner.comm.rank());
        IrecvClOp {
            inner,
            src,
            wire_tag,
            size,
            host,
            received: 0,
            ue,
            label,
            ids,
            submit_ns,
            state: IrecvState::Start,
        }
    }

    /// Record the operation envelope and counters at settlement.
    fn finish_obs(&mut self, ok: bool, at: SimNs) {
        record_envelope(
            &self.inner,
            &self.ids,
            "op.irecv",
            format!("irecv←{}", self.src),
            self.submit_ns,
            at,
            self.size as u64,
            ok,
            Some(self.src),
            Some(self.wire_tag),
        );
        self.inner
            .note_settled(ok, 0, if ok { self.size as u64 } else { 0 });
    }

    fn post_chunk(&mut self, now: SimNs, actor: &Actor) {
        let req = self
            .inner
            .comm
            .irecv(actor, Some(self.src), Some(self.wire_tag));
        let deadline = self.inner.comm.world().has_faults().then(|| {
            let patience = self.inner.retry.lock().chunk_timeout_ns;
            (now + patience, patience)
        });
        self.state = IrecvState::AwaitChunk { req, deadline };
    }

    fn fail(&mut self, at: SimNs, dead_peer: bool) -> Step {
        if let Some(stats) = self.inner.stats.lock().as_ref() {
            if dead_peer {
                stats.note_proc_failure();
            } else {
                stats.note_failure();
            }
        }
        if dead_peer {
            record_failure(&self.inner, &mut self.ids, self.src, at);
        }
        self.finish_obs(false, at);
        self.ue
            .set_failed(at, CL_MPI_TRANSFER_ERROR)
            .expect("irecv event settled once");
        self.state = IrecvState::Done;
        Step::Done
    }
}

impl EngineOp for IrecvClOp {
    fn label(&self) -> &str {
        &self.label
    }

    fn step(&mut self, now: SimNs, actor: &Actor) -> Step {
        loop {
            match &mut self.state {
                IrecvState::Start => {
                    if self.received == self.size {
                        // Zero-byte receive: complete immediately.
                        self.finish_obs(true, now);
                        self.ue
                            .set_complete(now)
                            .expect("irecv event completed once");
                        self.state = IrecvState::Done;
                        return Step::Done;
                    }
                    self.post_chunk(now, actor);
                }
                IrecvState::AwaitChunk { req, deadline } => {
                    let deadline = *deadline;
                    if let Some(result) = req.test(actor) {
                        let r = result.expect("matched receive yields a payload");
                        let len = r.data.len();
                        if self.received + len > self.size {
                            self.finish_obs(false, now);
                            self.ue
                                .set_failed(now, CL_MPI_TRANSFER_ERROR)
                                .expect("irecv event settled once");
                            self.state = IrecvState::Done;
                            return Step::Done;
                        }
                        let at = self.received;
                        self.host
                            .write(|h| h.as_mut_slice()[at..at + len].copy_from_slice(&r.data));
                        self.received += len;
                        if self.received == self.size {
                            self.finish_obs(true, now);
                            self.ue
                                .set_complete(now)
                                .expect("irecv event completed once");
                            self.state = IrecvState::Done;
                            return Step::Done;
                        }
                        self.post_chunk(now, actor);
                    } else if let Some(at) = req.known_completion() {
                        return Step::Park(Some(at.max(now + 1)));
                    } else if self.inner.peer_failed(self.src, now) {
                        // Dead source, nothing in flight: abort-and-poison
                        // without waiting out the patience.
                        let state = std::mem::replace(&mut self.state, IrecvState::Done);
                        if let IrecvState::AwaitChunk { req, .. } = state {
                            req.cancel();
                        }
                        return self.fail(now, true);
                    } else if let Some((at, _patience)) = deadline {
                        if now >= at {
                            let state = std::mem::replace(&mut self.state, IrecvState::Done);
                            if let IrecvState::AwaitChunk { req, .. } = state {
                                req.cancel();
                            }
                            return self.fail(now, false);
                        }
                        return Step::Park(Some(at));
                    } else {
                        return Step::Park(None);
                    }
                }
                IrecvState::Done => return Step::Done,
            }
        }
    }
}

/// `clCreateEventFromMPIRequest`: adapts a plain MPI request into an
/// event. The machine polls the request's completion signal and, once it
/// settles, publishes the payload (if any) and completes the event at
/// the settlement instant.
pub(crate) struct EventFromRequestOp {
    inner: Arc<Inner>,
    req: Option<Request>,
    ue: UserEvent,
    slot: Arc<Monitor<Option<RecvResult>>>,
    label: String,
    ids: ChildIds,
    submit_ns: SimNs,
}

impl EventFromRequestOp {
    pub(crate) fn new(
        inner: Arc<Inner>,
        req: Request,
        ue: UserEvent,
        slot: Arc<Monitor<Option<RecvResult>>>,
        ids: ChildIds,
        submit_ns: SimNs,
    ) -> Self {
        let label = format!("clmpi-event-from-request-r{}", inner.comm.rank());
        EventFromRequestOp {
            inner,
            req: Some(req),
            ue,
            slot,
            label,
            ids,
            submit_ns,
        }
    }
}

impl EngineOp for EventFromRequestOp {
    fn label(&self) -> &str {
        &self.label
    }

    fn step(&mut self, now: SimNs, actor: &Actor) -> Step {
        let req = self.req.as_mut().expect("stepped after completion");
        match req.poll(now) {
            CompletionState::Pending => Step::Park(req.wake_hint(now).filter(|&t| t > now)),
            CompletionState::Complete(_) | CompletionState::Failed(..) => {
                let mut req = self.req.take().expect("present above");
                let result = req.test(actor).expect("completion signalled above");
                let bytes = result.as_ref().map(|r| r.data.len() as u64).unwrap_or(0);
                record_envelope(
                    &self.inner,
                    &self.ids,
                    "op.request",
                    "mpi-request".into(),
                    self.submit_ns,
                    now,
                    bytes,
                    true,
                    None,
                    None,
                );
                self.inner.note_settled(true, 0, bytes);
                self.slot.with(|s| *s = result);
                self.ue
                    .set_complete(now)
                    .expect("request event completed once");
                Step::Done
            }
        }
    }
}

// ----------------------------------------------------------------------
// One-sided window machines (MPI_CL_MEM exposed as MPI_Win)
// ----------------------------------------------------------------------
//
// These machines drive `minimpi`'s non-blocking RMA handles from the
// engine. Liveness note: a handle's grant only lands when *someone*
// pumps the fabric arbiter past the reservation's earliest instant, and
// for one-sided traffic the issuing machine is usually the only pumper
// — so a machine with a pending flight always parks with an explicit
// time hint. Before the first grant the wire-claim earliest is known
// exactly; after a retransmit has been re-posted, the claim instant is
// arbiter-internal, so the machine falls back to a fixed virtual
// polling quantum.

/// Virtual polling cadence for an RMA flight whose next wake instant is
/// unknowable from outside the arbiter (post-retransmit).
const RMA_POLL_QUANTUM_NS: SimNs = 100_000;

/// One in-flight one-sided op plus the bookkeeping needed to park
/// precisely and to convert retransmit deltas into drop/retry spans.
struct RmaFlight {
    handle: RmaHandle,
    /// Wire-claim earliest of the initial post: the park target before
    /// the first grant (one tick later the pump's strict `earliest <
    /// now` test admits it).
    earliest: SimNs,
    /// Attempts already converted into drop/retry child spans.
    attempts_seen: u32,
    done_at: Option<SimNs>,
}

impl RmaFlight {
    fn new(handle: RmaHandle, earliest: SimNs) -> Self {
        RmaFlight {
            handle,
            earliest,
            attempts_seen: 0,
            done_at: None,
        }
    }

    /// Convert retransmits since the last step into drop + retry child
    /// spans and fault counters — the one-sided analogue of
    /// [`ReliableChunkSend`]'s accounting. The handle does not retain
    /// per-attempt wire times or reasons (a `NodeDown` drop is terminal,
    /// never a retry, so retried drops are counted as random loss), and
    /// the spans are instantaneous at the observing instant.
    fn note_attempts(&mut self, inner: &Inner, ids: &mut ChildIds, now: SimNs) {
        let target = self.handle.target();
        while self.attempts_seen < self.handle.attempts() {
            self.attempts_seen += 1;
            if let Some(stats) = inner.stats.lock().as_ref() {
                stats.note_drop(DropReason::Random);
                stats.note_retry();
            }
            record_child(
                inner,
                ids,
                "net",
                format!("rma-drop#{}→r{target}", self.attempts_seen),
                "drop",
                now,
                now,
                self.handle.len() as u64,
                false,
            );
            record_child(
                inner,
                ids,
                "net",
                format!("rma-retry#{}→r{target}", self.attempts_seen),
                "retry",
                now,
                now,
                self.handle.len() as u64,
                true,
            );
        }
    }
}

/// Collective verdict of one polling pass over a machine's flights.
enum FlightsVerdict {
    /// Every flight delivered; `at` is the last arrival instant.
    Done { at: SimNs },
    /// Some flight failed terminally (first failure in issue order).
    Failed { err: MpiError, at: SimNs },
    /// Still in flight; `wake` is the earliest useful re-poll instant
    /// (strictly future).
    Pending { wake: SimNs },
}

/// Drive every unfinished flight once at `now`.
fn poll_flights(
    inner: &Inner,
    ids: &mut ChildIds,
    flights: &mut [RmaFlight],
    now: SimNs,
) -> FlightsVerdict {
    let mut done_at = 0;
    let mut wake: Option<SimNs> = None;
    let mut failed: Option<(MpiError, SimNs)> = None;
    for f in flights.iter_mut() {
        if let Some(at) = f.done_at {
            done_at = done_at.max(at);
            continue;
        }
        let verdict = f.handle.poll(now);
        f.note_attempts(inner, ids, now);
        match verdict {
            RmaPoll::Done { at } => {
                f.done_at = Some(at);
                done_at = done_at.max(at);
            }
            RmaPoll::Failed { err, at } => {
                if failed.is_none() {
                    failed = Some((err, at));
                }
            }
            RmaPoll::Pending => {
                let next = if f.handle.attempts() == 0 {
                    now.max(f.earliest) + 1
                } else {
                    now + RMA_POLL_QUANTUM_NS
                };
                wake = Some(wake.map_or(next, |w: SimNs| w.min(next)));
            }
        }
    }
    if let Some((err, at)) = failed {
        FlightsVerdict::Failed {
            err,
            at: at.max(now),
        }
    } else if let Some(wake) = wake {
        FlightsVerdict::Pending { wake }
    } else {
        FlightsVerdict::Done { at: done_at }
    }
}

/// Terminal-failure accounting shared by the one-sided machines: a dead
/// target is a ULFM-class process failure, anything else a transfer
/// failure.
fn note_rma_failure(inner: &Inner, ids: &mut ChildIds, err: &MpiError, target: Rank, at: SimNs) {
    if matches!(err, MpiError::ProcFailed { .. }) {
        if let Some(stats) = inner.stats.lock().as_ref() {
            stats.note_proc_failure();
        }
        record_failure(inner, ids, target, at);
    } else if let Some(stats) = inner.stats.lock().as_ref() {
        stats.note_failure();
    }
}

/// States shared by the put machine (accumulate has an extra staging
/// phase and its own enum).
enum PutState {
    WaitDeps,
    Transfer { t0: SimNs, flights: Vec<RmaFlight> },
    Finish { done_at: SimNs },
    Done,
}

/// `clEnqueuePutBuffer`: one-sided write of a device-buffer range into a
/// peer rank's exposed window — wait list → per-chunk d2h staging +
/// routed wire flights → completion at the last flight's arrival.
///
/// The resolved strategy picks the *wire lowering*, which is what the
/// per-(peer, size) tuner sweeps:
///
/// * `Rma` — stage once, then the fabric's class-routed one-sided
///   transport carries it (loopback, CXL pool port, or NIC).
/// * `Pinned` — stage once, force the NIC path (two-sided emulation).
/// * `Pipelined(b)` — per-chunk staging on the forced NIC path; chunk
///   k's wire time overlaps chunk k+1's staging, as on the send path.
/// * `Mapped` — no staging: one fused stream of duration
///   max(injection, PCIe mapped stream) forced onto the NIC path.
pub(crate) struct PutOp {
    inner: Arc<Inner>,
    device: Device,
    win: Win,
    buf: Buffer,
    offset: usize,
    win_offset: usize,
    size: usize,
    target: Rank,
    strategy: TransferStrategy,
    wait: Vec<Event>,
    ue: UserEvent,
    label: String,
    ids: ChildIds,
    submit_ns: SimNs,
    state: PutState,
}

impl PutOp {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        inner: Arc<Inner>,
        device: Device,
        win: Win,
        buf: Buffer,
        offset: usize,
        win_offset: usize,
        size: usize,
        target: Rank,
        strategy: TransferStrategy,
        wait: Vec<Event>,
        ue: UserEvent,
        ids: ChildIds,
        submit_ns: SimNs,
    ) -> Self {
        let label = format!("clmpi-put-r{}-to-{}", inner.comm.rank(), target);
        PutOp {
            inner,
            device,
            win,
            buf,
            offset,
            win_offset,
            size,
            target,
            strategy,
            wait,
            ue,
            label,
            ids,
            submit_ns,
            state: PutState::WaitDeps,
        }
    }

    /// Stage and post every chunk of the put according to the strategy
    /// lowering. All reservations are made at `t0`; overlap between
    /// staging and wire time falls out of the resource timelines.
    fn arm(&mut self, t0: SimNs) -> ClResult<Vec<RmaFlight>> {
        let pcie = self.device.spec().pcie;
        let plan = ResolvedStrategy::plan(self.strategy, self.size);
        let mut flights = Vec::with_capacity(plan.chunks.len());
        let mut first = true;
        for &(coff, clen) in &plan.chunks {
            let (wire_earliest, route) = match self.strategy {
                TransferStrategy::Mapped => {
                    let stream = (clen as f64 * 1e9 / pcie.mapped_bps).round() as SimNs;
                    let fused = self.inner.cfg.cluster.link.injection_ns(clen).max(stream);
                    (t0 + pcie.map_setup_ns, RmaRoute::NicDuration(fused))
                }
                TransferStrategy::Rma
                | TransferStrategy::Pinned
                | TransferStrategy::Pipelined(_) => {
                    let earliest = if first { t0 + pcie.pin_setup_ns } else { t0 };
                    let d2h = self
                        .device
                        .d2h_link()
                        .reserve_duration(pcie.staged_ns(clen, true), earliest);
                    record_child(
                        &self.inner,
                        &mut self.ids,
                        "dev",
                        "d2h".into(),
                        "stage.d2h",
                        d2h.start,
                        d2h.end,
                        clen as u64,
                        true,
                    );
                    let route = if self.strategy == TransferStrategy::Rma {
                        RmaRoute::Auto
                    } else {
                        RmaRoute::Nic
                    };
                    (d2h.end, route)
                }
                TransferStrategy::Auto => unreachable!("strategy resolved before dispatch"),
            };
            first = false;
            let bytes = self
                .buf
                .load(self.offset + coff, clen)
                .expect("range checked at enqueue");
            let h = self
                .win
                .put_routed(
                    self.target,
                    self.win_offset + coff,
                    &bytes,
                    route,
                    wire_earliest,
                )
                .map_err(|e| {
                    ClError::TransferFailed(format!("put to rank {}: {e}", self.target))
                })?;
            flights.push(RmaFlight::new(h, wire_earliest));
        }
        Ok(flights)
    }

    fn settle(&mut self, outcome: ClResult<()>, at: SimNs) -> Step {
        let ok = outcome.is_ok();
        // A transfer-level failure retires the probed lowering for this
        // (peer, size) class; a poisoned wait list says nothing about it.
        if !ok && !matches!(outcome, Err(ClError::EventFailed { .. })) {
            if let Some(sel) = self.inner.rma_adaptive.lock().as_ref() {
                sel.observe_failure(self.target, self.size, self.strategy);
            }
        }
        record_envelope(
            &self.inner,
            &self.ids,
            "op.put",
            format!("put→{}@{}", self.target, self.win_offset),
            self.submit_ns,
            at,
            self.size as u64,
            ok,
            Some(self.target),
            None,
        );
        self.inner
            .note_settled(ok, if ok { self.size as u64 } else { 0 }, 0);
        match outcome {
            Ok(()) => self.ue.set_complete(at).expect("put event completed once"),
            Err(ClError::EventFailed { .. }) => self
                .ue
                .set_failed(at, EXEC_STATUS_ERROR_FOR_EVENTS_IN_WAIT_LIST)
                .expect("put event settled once"),
            Err(_) => self
                .ue
                .set_failed(at, CL_MPI_TRANSFER_ERROR)
                .expect("put event settled once"),
        }
        self.state = PutState::Done;
        Step::Done
    }
}

impl EngineOp for PutOp {
    fn label(&self) -> &str {
        &self.label
    }

    fn step(&mut self, now: SimNs, _actor: &Actor) -> Step {
        loop {
            match &mut self.state {
                PutState::WaitDeps => match poll_deps(&self.wait) {
                    WaitListStatus::Pending => return Step::Park(None),
                    WaitListStatus::Failed { code, label } => {
                        return self.settle(Err(ClError::EventFailed { code, label }), now);
                    }
                    WaitListStatus::Ready => match self.arm(now) {
                        Ok(flights) => self.state = PutState::Transfer { t0: now, flights },
                        Err(e) => return self.settle(Err(e), now),
                    },
                },
                PutState::Transfer { t0, flights } => {
                    let t0 = *t0;
                    let verdict = poll_flights(&self.inner, &mut self.ids, flights, now);
                    match verdict {
                        FlightsVerdict::Pending { wake } => return Step::Park(Some(wake)),
                        FlightsVerdict::Failed { err, at } => {
                            note_rma_failure(&self.inner, &mut self.ids, &err, self.target, at);
                            return self.settle(
                                Err(ClError::TransferFailed(format!(
                                    "put to rank {}: {err}",
                                    self.target
                                ))),
                                at,
                            );
                        }
                        FlightsVerdict::Done { at } => {
                            let done_at = at.max(t0);
                            if let Some(stats) = self.inner.stats.lock().as_ref() {
                                stats.record(
                                    "put",
                                    &self.strategy.name(),
                                    self.size,
                                    done_at.saturating_sub(t0),
                                );
                            }
                            if let Some(sel) = self.inner.rma_adaptive.lock().as_ref() {
                                sel.observe(
                                    self.target,
                                    self.size,
                                    self.strategy,
                                    done_at.saturating_sub(t0),
                                );
                            }
                            self.state = PutState::Finish { done_at };
                        }
                    }
                }
                PutState::Finish { done_at } => {
                    let done_at = *done_at;
                    if now >= done_at {
                        return self.settle(Ok(()), done_at);
                    }
                    return Step::Park(Some(done_at));
                }
                PutState::Done => return Step::Done,
            }
        }
    }
}

enum GetState {
    WaitDeps,
    Transfer {
        t0: SimNs,
        flight: RmaFlight,
    },
    Stage {
        t0: SimNs,
        data: Vec<u8>,
        end: SimNs,
    },
    Done,
}

/// `clEnqueueGetBuffer`: one-sided read from a peer rank's window into a
/// device buffer — wait list → class-routed wire flight → h2d staging →
/// completion with the data in device memory. The window's staging
/// memory is registered at `Win_create`, so the landing pays the staged
/// copy but no per-transfer pin setup.
pub(crate) struct GetOp {
    inner: Arc<Inner>,
    device: Device,
    win: Win,
    buf: Buffer,
    offset: usize,
    win_offset: usize,
    size: usize,
    target: Rank,
    wait: Vec<Event>,
    ue: UserEvent,
    label: String,
    ids: ChildIds,
    submit_ns: SimNs,
    state: GetState,
}

impl GetOp {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        inner: Arc<Inner>,
        device: Device,
        win: Win,
        buf: Buffer,
        offset: usize,
        win_offset: usize,
        size: usize,
        target: Rank,
        wait: Vec<Event>,
        ue: UserEvent,
        ids: ChildIds,
        submit_ns: SimNs,
    ) -> Self {
        let label = format!("clmpi-get-r{}-from-{}", inner.comm.rank(), target);
        GetOp {
            inner,
            device,
            win,
            buf,
            offset,
            win_offset,
            size,
            target,
            wait,
            ue,
            label,
            ids,
            submit_ns,
            state: GetState::WaitDeps,
        }
    }

    fn settle(&mut self, outcome: ClResult<()>, at: SimNs) -> Step {
        let ok = outcome.is_ok();
        record_envelope(
            &self.inner,
            &self.ids,
            "op.get",
            format!("get←{}@{}", self.target, self.win_offset),
            self.submit_ns,
            at,
            self.size as u64,
            ok,
            Some(self.target),
            None,
        );
        self.inner
            .note_settled(ok, 0, if ok { self.size as u64 } else { 0 });
        match outcome {
            Ok(()) => self.ue.set_complete(at).expect("get event completed once"),
            Err(ClError::EventFailed { .. }) => self
                .ue
                .set_failed(at, EXEC_STATUS_ERROR_FOR_EVENTS_IN_WAIT_LIST)
                .expect("get event settled once"),
            Err(_) => self
                .ue
                .set_failed(at, CL_MPI_TRANSFER_ERROR)
                .expect("get event settled once"),
        }
        self.state = GetState::Done;
        Step::Done
    }
}

impl EngineOp for GetOp {
    fn label(&self) -> &str {
        &self.label
    }

    fn step(&mut self, now: SimNs, _actor: &Actor) -> Step {
        loop {
            match &mut self.state {
                GetState::WaitDeps => match poll_deps(&self.wait) {
                    WaitListStatus::Pending => return Step::Park(None),
                    WaitListStatus::Failed { code, label } => {
                        return self.settle(Err(ClError::EventFailed { code, label }), now);
                    }
                    WaitListStatus::Ready => {
                        match self.win.get(self.target, self.win_offset, self.size) {
                            Ok(h) => {
                                self.state = GetState::Transfer {
                                    t0: now,
                                    flight: RmaFlight::new(h, now),
                                };
                            }
                            Err(e) => {
                                return self.settle(
                                    Err(ClError::TransferFailed(format!(
                                        "get from rank {}: {e}",
                                        self.target
                                    ))),
                                    now,
                                );
                            }
                        }
                    }
                },
                GetState::Transfer { t0, flight } => {
                    let t0 = *t0;
                    let verdict = poll_flights(
                        &self.inner,
                        &mut self.ids,
                        std::slice::from_mut(flight),
                        now,
                    );
                    match verdict {
                        FlightsVerdict::Pending { wake } => return Step::Park(Some(wake)),
                        FlightsVerdict::Failed { err, at } => {
                            note_rma_failure(&self.inner, &mut self.ids, &err, self.target, at);
                            return self.settle(
                                Err(ClError::TransferFailed(format!(
                                    "get from rank {}: {err}",
                                    self.target
                                ))),
                                at,
                            );
                        }
                        FlightsVerdict::Done { at } => {
                            let data = flight
                                .handle
                                .take_data()
                                .expect("settled get yields its payload");
                            let pcie = self.device.spec().pcie;
                            let h2d = self
                                .device
                                .h2d_link()
                                .reserve_duration(pcie.staged_ns(data.len(), true), at.max(t0));
                            record_child(
                                &self.inner,
                                &mut self.ids,
                                "dev",
                                "h2d".into(),
                                "stage.h2d",
                                h2d.start,
                                h2d.end,
                                data.len() as u64,
                                true,
                            );
                            self.state = GetState::Stage {
                                t0,
                                data,
                                end: h2d.end,
                            };
                        }
                    }
                }
                GetState::Stage { t0, data, end } => {
                    let (t0, end) = (*t0, *end);
                    if now < end {
                        return Step::Park(Some(end));
                    }
                    self.buf
                        .store(self.offset, data)
                        .expect("range checked at enqueue");
                    if let Some(stats) = self.inner.stats.lock().as_ref() {
                        stats.record("get", "rma", self.size, end.saturating_sub(t0));
                    }
                    return self.settle(Ok(()), end);
                }
                GetState::Done => return Step::Done,
            }
        }
    }
}

enum AccState {
    WaitDeps,
    Stage { t0: SimNs, end: SimNs },
    Transfer { t0: SimNs, flight: RmaFlight },
    Finish { done_at: SimNs },
    Done,
}

/// `clEnqueueAccumulateBuffer`: one-sided read-modify-write of f64s from
/// a device buffer into a peer rank's window — wait list → d2h staging →
/// class-routed wire flight applied in the arbiter's canonical grant
/// order → completion. The operand must leave the device before the op
/// can be posted (the fold reads the payload at grant time), so staging
/// and wire time serialize here, unlike the put path.
pub(crate) struct AccumulateOp {
    inner: Arc<Inner>,
    device: Device,
    win: Win,
    buf: Buffer,
    offset: usize,
    win_offset: usize,
    size: usize,
    target: Rank,
    op: ReduceOp,
    wait: Vec<Event>,
    ue: UserEvent,
    label: String,
    ids: ChildIds,
    submit_ns: SimNs,
    state: AccState,
}

impl AccumulateOp {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        inner: Arc<Inner>,
        device: Device,
        win: Win,
        buf: Buffer,
        offset: usize,
        win_offset: usize,
        size: usize,
        target: Rank,
        op: ReduceOp,
        wait: Vec<Event>,
        ue: UserEvent,
        ids: ChildIds,
        submit_ns: SimNs,
    ) -> Self {
        let label = format!("clmpi-acc-r{}-to-{}", inner.comm.rank(), target);
        AccumulateOp {
            inner,
            device,
            win,
            buf,
            offset,
            win_offset,
            size,
            target,
            op,
            wait,
            ue,
            label,
            ids,
            submit_ns,
            state: AccState::WaitDeps,
        }
    }

    fn settle(&mut self, outcome: ClResult<()>, at: SimNs) -> Step {
        let ok = outcome.is_ok();
        record_envelope(
            &self.inner,
            &self.ids,
            "op.acc",
            format!("acc→{}@{}", self.target, self.win_offset),
            self.submit_ns,
            at,
            self.size as u64,
            ok,
            Some(self.target),
            None,
        );
        self.inner
            .note_settled(ok, if ok { self.size as u64 } else { 0 }, 0);
        match outcome {
            Ok(()) => self.ue.set_complete(at).expect("acc event completed once"),
            Err(ClError::EventFailed { .. }) => self
                .ue
                .set_failed(at, EXEC_STATUS_ERROR_FOR_EVENTS_IN_WAIT_LIST)
                .expect("acc event settled once"),
            Err(_) => self
                .ue
                .set_failed(at, CL_MPI_TRANSFER_ERROR)
                .expect("acc event settled once"),
        }
        self.state = AccState::Done;
        Step::Done
    }
}

impl EngineOp for AccumulateOp {
    fn label(&self) -> &str {
        &self.label
    }

    fn step(&mut self, now: SimNs, _actor: &Actor) -> Step {
        loop {
            match &mut self.state {
                AccState::WaitDeps => match poll_deps(&self.wait) {
                    WaitListStatus::Pending => return Step::Park(None),
                    WaitListStatus::Failed { code, label } => {
                        return self.settle(Err(ClError::EventFailed { code, label }), now);
                    }
                    WaitListStatus::Ready => {
                        let pcie = self.device.spec().pcie;
                        let d2h = self.device.d2h_link().reserve_duration(
                            pcie.staged_ns(self.size, true),
                            now + pcie.pin_setup_ns,
                        );
                        record_child(
                            &self.inner,
                            &mut self.ids,
                            "dev",
                            "d2h".into(),
                            "stage.d2h",
                            d2h.start,
                            d2h.end,
                            self.size as u64,
                            true,
                        );
                        self.state = AccState::Stage {
                            t0: now,
                            end: d2h.end,
                        };
                    }
                },
                AccState::Stage { t0, end } => {
                    let (t0, end) = (*t0, *end);
                    if now < end {
                        return Step::Park(Some(end));
                    }
                    let bytes = self
                        .buf
                        .load(self.offset, self.size)
                        .expect("range checked at enqueue");
                    match self
                        .win
                        .accumulate(self.target, self.win_offset, &bytes, self.op)
                    {
                        Ok(h) => {
                            self.state = AccState::Transfer {
                                t0,
                                flight: RmaFlight::new(h, now),
                            };
                        }
                        Err(e) => {
                            return self.settle(
                                Err(ClError::TransferFailed(format!(
                                    "accumulate to rank {}: {e}",
                                    self.target
                                ))),
                                now,
                            );
                        }
                    }
                }
                AccState::Transfer { t0, flight } => {
                    let t0 = *t0;
                    let verdict = poll_flights(
                        &self.inner,
                        &mut self.ids,
                        std::slice::from_mut(flight),
                        now,
                    );
                    match verdict {
                        FlightsVerdict::Pending { wake } => return Step::Park(Some(wake)),
                        FlightsVerdict::Failed { err, at } => {
                            note_rma_failure(&self.inner, &mut self.ids, &err, self.target, at);
                            return self.settle(
                                Err(ClError::TransferFailed(format!(
                                    "accumulate to rank {}: {err}",
                                    self.target
                                ))),
                                at,
                            );
                        }
                        FlightsVerdict::Done { at } => {
                            let done_at = at.max(t0);
                            if let Some(stats) = self.inner.stats.lock().as_ref() {
                                stats.record("acc", "rma", self.size, done_at.saturating_sub(t0));
                            }
                            self.state = AccState::Finish { done_at };
                        }
                    }
                }
                AccState::Finish { done_at } => {
                    let done_at = *done_at;
                    if now >= done_at {
                        return self.settle(Ok(()), done_at);
                    }
                    return Step::Park(Some(done_at));
                }
                AccState::Done => return Step::Done,
            }
        }
    }
}

enum FenceState {
    WaitDeps,
    Drain,
    Await {
        start: SimNs,
        gen: u64,
        op_err: Option<MpiError>,
        deadline: Option<SimNs>,
    },
    Done,
}

/// `clEnqueueWinFence`: close the window's current access epoch and open
/// the next — drain this rank's pending one-sided ops, mark the fence
/// arrival, then await every rank's matching arrival. Mirrors the
/// blocking [`Win::fence`] exactly: op failures latched during the epoch
/// take precedence over synchronization failures, and a patience expiry
/// under a fault plan is classified against the laggards.
///
/// Parking: the drain phase polls at the fixed quantum (the pending
/// handles' own machines park precisely; this is the backstop), and the
/// await phase parks on notification — a peer's fence arrival is a
/// control-block write that notifies — plus the patience deadline when a
/// fault plan is armed.
pub(crate) struct WinFenceOp {
    inner: Arc<Inner>,
    win: Win,
    wait: Vec<Event>,
    ue: UserEvent,
    label: String,
    ids: ChildIds,
    submit_ns: SimNs,
    state: FenceState,
}

impl WinFenceOp {
    pub(crate) fn new(
        inner: Arc<Inner>,
        win: Win,
        wait: Vec<Event>,
        ue: UserEvent,
        ids: ChildIds,
        submit_ns: SimNs,
    ) -> Self {
        let label = format!("clmpi-win-fence-r{}", inner.comm.rank());
        WinFenceOp {
            inner,
            win,
            wait,
            ue,
            label,
            ids,
            submit_ns,
            state: FenceState::WaitDeps,
        }
    }

    fn settle(&mut self, outcome: ClResult<()>, at: SimNs) -> Step {
        let ok = outcome.is_ok();
        record_envelope(
            &self.inner,
            &self.ids,
            "op.fence",
            "win-fence".into(),
            self.submit_ns,
            at,
            0,
            ok,
            None,
            None,
        );
        self.inner.note_settled(ok, 0, 0);
        match outcome {
            Ok(()) => self
                .ue
                .set_complete(at)
                .expect("fence event completed once"),
            Err(ClError::EventFailed { .. }) => self
                .ue
                .set_failed(at, EXEC_STATUS_ERROR_FOR_EVENTS_IN_WAIT_LIST)
                .expect("fence event settled once"),
            Err(_) => self
                .ue
                .set_failed(at, CL_MPI_TRANSFER_ERROR)
                .expect("fence event settled once"),
        }
        self.state = FenceState::Done;
        Step::Done
    }

    fn settle_epoch(&mut self, err: MpiError, at: SimNs) -> Step {
        if let MpiError::ProcFailed { rank } = err {
            if let Some(stats) = self.inner.stats.lock().as_ref() {
                stats.note_proc_failure();
            }
            record_failure(&self.inner, &mut self.ids, rank, at);
        } else if let Some(stats) = self.inner.stats.lock().as_ref() {
            stats.note_failure();
        }
        self.settle(
            Err(ClError::TransferFailed(format!("rma epoch: {err}"))),
            at,
        )
    }
}

impl EngineOp for WinFenceOp {
    fn label(&self) -> &str {
        &self.label
    }

    fn step(&mut self, now: SimNs, _actor: &Actor) -> Step {
        loop {
            match &mut self.state {
                FenceState::WaitDeps => match poll_deps(&self.wait) {
                    WaitListStatus::Pending => return Step::Park(None),
                    WaitListStatus::Failed { code, label } => {
                        return self.settle(Err(ClError::EventFailed { code, label }), now);
                    }
                    WaitListStatus::Ready => self.state = FenceState::Drain,
                },
                FenceState::Drain => {
                    if !self.win.poll_pending(now) {
                        return Step::Park(Some(now + RMA_POLL_QUANTUM_NS));
                    }
                    let op_err = self.win.take_epoch_err();
                    let gen = self.win.fence_enter(now);
                    let deadline = self
                        .win
                        .comm()
                        .world()
                        .has_faults()
                        .then(|| now + RMA_PATIENCE_NS);
                    self.state = FenceState::Await {
                        start: now,
                        gen,
                        op_err,
                        deadline,
                    };
                }
                FenceState::Await {
                    start,
                    gen,
                    op_err,
                    deadline,
                } => {
                    let (start, gen, deadline) = (*start, *gen, *deadline);
                    if self.win.fence_ready(gen) {
                        // Epoch op failures outrank a clean sync (the
                        // blocking fence's `op_err.map_or(sync, Err)`).
                        return match op_err.take() {
                            None => self.settle(Ok(()), now),
                            Some(e) => self.settle_epoch(e, now),
                        };
                    }
                    match deadline {
                        Some(d) if now >= d => {
                            let laggards = self.win.fence_laggards(gen);
                            let sync = self.win.classify_stall(&laggards, now, now - start);
                            let err = op_err.take().unwrap_or(sync);
                            return self.settle_epoch(err, now);
                        }
                        Some(d) => return Step::Park(Some(d)),
                        None => return Step::Park(None),
                    }
                }
                FenceState::Done => return Step::Done,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simtime::SimClock;

    /// A machine that parks until a fixed instant, then records when the
    /// engine retired it.
    struct TimerOp {
        fire_at: SimNs,
        fired: Arc<Monitor<Option<SimNs>>>,
    }

    impl EngineOp for TimerOp {
        fn label(&self) -> &str {
            "timer"
        }

        fn step(&mut self, now: SimNs, _actor: &Actor) -> Step {
            if now < self.fire_at {
                return Step::Park(Some(self.fire_at));
            }
            self.fired.with(|f| *f = Some(now));
            Step::Done
        }
    }

    #[test]
    fn engine_fires_timers_at_their_virtual_instant() {
        let clock = SimClock::new();
        // Register the caller first: the engine worker must never be the
        // only actor (the deadlock detector would trip at start-up).
        let actor = clock.register("caller");
        let engine = Engine::start(&clock, "test-engine".into(), 0);
        let fired = Arc::new(Monitor::new(clock.clone(), None));
        engine.submit(Box::new(TimerOp {
            fire_at: 5_000,
            fired: fired.clone(),
        }));
        engine.wait_idle(&actor);
        assert_eq!(fired.peek(|f| *f), Some(5_000));
        assert_eq!(actor.now_ns(), 5_000);
    }

    #[test]
    fn engine_orders_independent_timers_without_blocking_each_other() {
        let clock = SimClock::new();
        // Register the caller first: the engine worker must never be the
        // only actor (the deadlock detector would trip at start-up).
        let actor = clock.register("caller");
        let engine = Engine::start(&clock, "test-engine".into(), 0);
        let order = Arc::new(Monitor::new(clock.clone(), Vec::<SimNs>::new()));
        struct LoggingTimer {
            fire_at: SimNs,
            order: Arc<Monitor<Vec<SimNs>>>,
        }
        impl EngineOp for LoggingTimer {
            fn label(&self) -> &str {
                "logging-timer"
            }
            fn step(&mut self, now: SimNs, _actor: &Actor) -> Step {
                if now < self.fire_at {
                    return Step::Park(Some(self.fire_at));
                }
                self.order.with(|o| o.push(now));
                Step::Done
            }
        }
        // Submit out of order; the engine must retire them in virtual
        // order because each parks on its own alarm.
        for &at in &[20_000u64, 12_000, 16_000] {
            engine.submit(Box::new(LoggingTimer {
                fire_at: at,
                order: order.clone(),
            }));
        }
        engine.wait_idle(&actor);
        assert_eq!(order.peek(|o| o.clone()), vec![12_000, 16_000, 20_000]);
        assert_eq!(actor.now_ns(), 20_000);
    }

    #[test]
    #[should_panic(expected = "already shut down")]
    fn submitting_after_shutdown_panics() {
        let clock = SimClock::new();
        // Register the caller first: the engine worker must never be the
        // only actor (the deadlock detector would trip at start-up).
        let actor = clock.register("caller");
        let engine = Engine::start(&clock, "test-engine".into(), 0);
        engine.wait_idle(&actor);
        engine.shared.with(|s| s.shutdown = true);
        let fired = Arc::new(Monitor::new(clock.clone(), None));
        engine.submit(Box::new(TimerOp { fire_at: 1, fired }));
    }
}
