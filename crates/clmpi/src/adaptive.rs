//! Measurement-based strategy selection.
//!
//! §V-B: "An automatic selection mechanism of the data transfer
//! implementations can be adopted behind the interfaces." The static
//! policy in [`crate::SystemConfig`] encodes the paper's per-system
//! choice; this module goes one step further: an online tuner that
//! *probes* each candidate strategy for a message-size class and then
//! sticks with the fastest — so applications inherit the best path on
//! systems no preset exists for, without any code change (the paper's
//! performance-portability argument, §IV advantage 1).

use std::collections::BTreeMap;
use std::sync::Arc;

use simtime::plock::Mutex;
use simtime::SimNs;

use crate::collective::{CollAlgo, CollTuning};
use crate::strategy::TransferStrategy;
use crate::system::SystemConfig;

/// Size classes: transfers are bucketed by power-of-two message size, so
/// measurements for 1 MiB transfers don't steer 64 MiB ones.
fn size_class(size: usize) -> u32 {
    (usize::BITS - size.max(1).leading_zeros()).max(1)
}

#[derive(Default)]
struct ClassState {
    /// Strategies not yet probed for this class.
    pending: Vec<TransferStrategy>,
    /// (strategy, observed ns) of finished probes.
    observed: Vec<(TransferStrategy, SimNs)>,
    /// Strategies whose probe failed permanently (retired from rotation).
    failed: Vec<TransferStrategy>,
    /// Chosen winner once probing is done.
    winner: Option<TransferStrategy>,
}

/// An online per-size-class strategy tuner.
///
/// `choose(size)` returns the strategy to use now; `observe(size,
/// strategy, ns)` feeds back the measured duration. During the probe
/// phase each candidate runs once (in rotation); afterwards the winner is
/// locked in for that class.
pub struct AdaptiveSelector {
    candidates: Vec<TransferStrategy>,
    classes: Arc<Mutex<BTreeMap<u32, ClassState>>>,
}

impl AdaptiveSelector {
    /// Tuner over the standard candidate set for `sys`: pinned, mapped,
    /// and pipelined with the system's default block.
    pub fn for_system(sys: &SystemConfig) -> Self {
        Self::with_candidates(vec![
            TransferStrategy::Pinned,
            TransferStrategy::Mapped,
            TransferStrategy::Pipelined(sys.default_pipeline_block),
        ])
    }

    /// Tuner over an explicit candidate set (must be concrete strategies).
    pub fn with_candidates(candidates: Vec<TransferStrategy>) -> Self {
        assert!(!candidates.is_empty(), "need at least one candidate");
        assert!(
            !candidates.contains(&TransferStrategy::Auto),
            "candidates must be concrete"
        );
        AdaptiveSelector {
            candidates,
            classes: Arc::new(Mutex::new(BTreeMap::new())),
        }
    }

    /// The strategy to use for a transfer of `size` bytes.
    pub fn choose(&self, size: usize) -> TransferStrategy {
        let class = size_class(size);
        let mut st = self.classes.lock();
        let cs = st.entry(class).or_insert_with(|| ClassState {
            pending: self.candidates.clone(),
            ..Default::default()
        });
        if let Some(w) = cs.winner {
            return w;
        }
        // Probe phase: hand out the next unprobed candidate (it stays in
        // `pending` until its observation arrives, so concurrent chooses
        // of the same class re-probe rather than starve).
        cs.pending
            .first()
            .copied()
            .unwrap_or_else(|| self.candidates[0])
    }

    /// Feed back a measured duration.
    pub fn observe(&self, size: usize, strategy: TransferStrategy, dur_ns: SimNs) {
        let class = size_class(size);
        let mut st = self.classes.lock();
        let Some(cs) = st.get_mut(&class) else { return };
        if cs.winner.is_some() {
            return;
        }
        if let Some(pos) = cs.pending.iter().position(|&s| s == strategy) {
            cs.pending.remove(pos);
            cs.observed.push((strategy, dur_ns));
        }
        if cs.pending.is_empty() {
            cs.winner = cs
                .observed
                .iter()
                .min_by_key(|(_, ns)| *ns)
                .map(|(s, _)| *s);
        }
    }

    /// Feed back a permanent probe failure (retry budget exhausted,
    /// receiver timeout). The strategy is retired from the class's probe
    /// rotation — without this, a failed probe never reaches
    /// [`AdaptiveSelector::observe`], so it stays `pending` forever and
    /// `choose` re-hands the failing candidate indefinitely (probe
    /// starvation). If *every* candidate fails, the class falls back to
    /// `candidates[0]` as its winner so callers still get a deterministic
    /// strategy instead of an endless probe loop.
    pub fn observe_failure(&self, size: usize, strategy: TransferStrategy) {
        let class = size_class(size);
        let mut st = self.classes.lock();
        let Some(cs) = st.get_mut(&class) else { return };
        if cs.winner.is_some() {
            return;
        }
        if let Some(pos) = cs.pending.iter().position(|&s| s == strategy) {
            cs.pending.remove(pos);
            cs.failed.push(strategy);
        }
        if cs.pending.is_empty() {
            cs.winner = cs
                .observed
                .iter()
                .min_by_key(|(_, ns)| *ns)
                .map(|(s, _)| *s)
                // All candidates failed: pick the primary candidate rather
                // than probing a known-bad set forever.
                .or(Some(self.candidates[0]));
        }
    }

    /// Strategies retired by [`AdaptiveSelector::observe_failure`] for
    /// `size`'s class (diagnostics and tests).
    pub fn failures_for(&self, size: usize) -> Vec<TransferStrategy> {
        self.classes
            .lock()
            .get(&size_class(size))
            .map(|c| c.failed.clone())
            .unwrap_or_default()
    }

    /// The locked-in winner for `size`'s class, if probing finished.
    pub fn winner_for(&self, size: usize) -> Option<TransferStrategy> {
        self.classes
            .lock()
            .get(&size_class(size))
            .and_then(|c| c.winner)
    }
}

/// The one-sided analogue of [`AdaptiveSelector`]: a tuner over the wire
/// route of a window put, keyed on **(peer node distance, message-size
/// class)** — in practice keyed by the peer rank's node, since the win of
/// the RMA path depends entirely on whether the peer shares a CXL pool.
/// A co-located peer's 1 MiB class locks `Rma` (the pool port at 28 GB/s
/// dwarfs the NIC); a cross-pod peer's class locks a NIC-side strategy.
/// Probe, observe, failure-retirement and all-fail fallback semantics are
/// identical to the transfer selector.
pub struct PeerSelector {
    candidates: Vec<TransferStrategy>,
    classes: Arc<Mutex<BTreeMap<(usize, u32), ClassState>>>,
}

impl PeerSelector {
    /// Tuner over the standard one-sided candidate set for `sys`: the
    /// class-routed RMA path plus the three NIC-side emulations.
    pub fn for_system(sys: &SystemConfig) -> Self {
        Self::with_candidates(vec![
            TransferStrategy::Rma,
            TransferStrategy::Pinned,
            TransferStrategy::Mapped,
            TransferStrategy::Pipelined(sys.default_pipeline_block),
        ])
    }

    /// Tuner over an explicit candidate set (must be concrete strategies).
    pub fn with_candidates(candidates: Vec<TransferStrategy>) -> Self {
        assert!(!candidates.is_empty(), "need at least one candidate");
        assert!(
            !candidates.contains(&TransferStrategy::Auto),
            "candidates must be concrete"
        );
        PeerSelector {
            candidates,
            classes: Arc::new(Mutex::new(BTreeMap::new())),
        }
    }

    /// The strategy to use for a `size`-byte one-sided transfer to `peer`.
    pub fn choose(&self, peer: usize, size: usize) -> TransferStrategy {
        let key = (peer, size_class(size));
        let mut st = self.classes.lock();
        let cs = st.entry(key).or_insert_with(|| ClassState {
            pending: self.candidates.clone(),
            ..Default::default()
        });
        if let Some(w) = cs.winner {
            return w;
        }
        cs.pending
            .first()
            .copied()
            .unwrap_or_else(|| self.candidates[0])
    }

    /// Feed back a measured duration for a transfer to `peer`.
    pub fn observe(&self, peer: usize, size: usize, strategy: TransferStrategy, dur_ns: SimNs) {
        let key = (peer, size_class(size));
        let mut st = self.classes.lock();
        let Some(cs) = st.get_mut(&key) else { return };
        if cs.winner.is_some() {
            return;
        }
        if let Some(pos) = cs.pending.iter().position(|&s| s == strategy) {
            cs.pending.remove(pos);
            cs.observed.push((strategy, dur_ns));
        }
        if cs.pending.is_empty() {
            cs.winner = cs
                .observed
                .iter()
                .min_by_key(|(_, ns)| *ns)
                .map(|(s, _)| *s);
        }
    }

    /// Feed back a permanent probe failure (retry budget exhausted or the
    /// peer's node died). Retirement and all-fail fallback semantics match
    /// [`AdaptiveSelector::observe_failure`].
    pub fn observe_failure(&self, peer: usize, size: usize, strategy: TransferStrategy) {
        let key = (peer, size_class(size));
        let mut st = self.classes.lock();
        let Some(cs) = st.get_mut(&key) else { return };
        if cs.winner.is_some() {
            return;
        }
        if let Some(pos) = cs.pending.iter().position(|&s| s == strategy) {
            cs.pending.remove(pos);
            cs.failed.push(strategy);
        }
        if cs.pending.is_empty() {
            cs.winner = cs
                .observed
                .iter()
                .min_by_key(|(_, ns)| *ns)
                .map(|(s, _)| *s)
                .or(Some(self.candidates[0]));
        }
    }

    /// Strategies retired for `(peer, size)`'s class (diagnostics).
    pub fn failures_for(&self, peer: usize, size: usize) -> Vec<TransferStrategy> {
        self.classes
            .lock()
            .get(&(peer, size_class(size)))
            .map(|c| c.failed.clone())
            .unwrap_or_default()
    }

    /// The locked-in winner for `(peer, size)`'s class, if probing
    /// finished.
    pub fn winner_for(&self, peer: usize, size: usize) -> Option<TransferStrategy> {
        self.classes
            .lock()
            .get(&(peer, size_class(size)))
            .and_then(|c| c.winner)
    }
}

#[derive(Default)]
struct CollClassState {
    pending: Vec<CollTuning>,
    observed: Vec<(CollTuning, SimNs)>,
    failed: Vec<CollTuning>,
    winner: Option<CollTuning>,
}

/// The collective analogue of [`AdaptiveSelector`]: an online tuner over
/// [`CollTuning`] (algorithm × pipeline chunk) candidates, keyed on
/// **(message-size class, world size)** — a tree that wins at 4 ranks
/// may lose at 13, so world sizes tune independently. Probe, observe,
/// failure-retirement and all-fail fallback semantics are identical to
/// the transfer selector (including the PR 4 starvation fix: a probe
/// that fails permanently is retired via
/// [`CollectiveSelector::observe_failure`] instead of being re-offered
/// forever).
pub struct CollectiveSelector {
    candidates: Vec<CollTuning>,
    classes: Arc<Mutex<BTreeMap<(u32, usize), CollClassState>>>,
}

impl CollectiveSelector {
    /// Broadcast tuner over the standard candidate set for `sys`: flat,
    /// binomial tree, and pipelined ring, all at the system's default
    /// pipeline block.
    pub fn bcast_for_system(sys: &SystemConfig) -> Self {
        let b = sys.default_pipeline_block;
        Self::with_candidates(vec![
            CollTuning {
                algo: CollAlgo::Flat,
                chunk: b,
            },
            CollTuning {
                algo: CollAlgo::Tree,
                chunk: b,
            },
            CollTuning {
                algo: CollAlgo::Ring,
                chunk: b,
            },
        ])
    }

    /// Allreduce tuner for `sys`: the topology is a fixed ring, so the
    /// candidates only vary the pipeline chunk.
    pub fn allreduce_for_system(sys: &SystemConfig) -> Self {
        let b = sys.default_pipeline_block;
        Self::with_candidates(vec![
            CollTuning {
                algo: CollAlgo::Ring,
                chunk: b,
            },
            CollTuning {
                algo: CollAlgo::Ring,
                chunk: (b / 4).max(4 << 10),
            },
            CollTuning {
                algo: CollAlgo::Ring,
                chunk: b * 4,
            },
        ])
    }

    /// Tuner over an explicit candidate set (chunks must be ≥ 1).
    pub fn with_candidates(candidates: Vec<CollTuning>) -> Self {
        assert!(!candidates.is_empty(), "need at least one candidate");
        assert!(
            candidates.iter().all(|c| c.chunk > 0),
            "candidate chunks must be ≥ 1"
        );
        CollectiveSelector {
            candidates,
            classes: Arc::new(Mutex::new(BTreeMap::new())),
        }
    }

    /// The tuning to use for a `size`-byte collective over `world` ranks.
    pub fn choose(&self, size: usize, world: usize) -> CollTuning {
        let key = (size_class(size), world);
        let mut st = self.classes.lock();
        let cs = st.entry(key).or_insert_with(|| CollClassState {
            pending: self.candidates.clone(),
            ..Default::default()
        });
        if let Some(w) = cs.winner {
            return w;
        }
        cs.pending
            .first()
            .copied()
            .unwrap_or_else(|| self.candidates[0])
    }

    /// Feed back a measured collective duration.
    pub fn observe(&self, size: usize, world: usize, tuning: CollTuning, dur_ns: SimNs) {
        let key = (size_class(size), world);
        let mut st = self.classes.lock();
        let Some(cs) = st.get_mut(&key) else { return };
        if cs.winner.is_some() {
            return;
        }
        if let Some(pos) = cs.pending.iter().position(|&c| c == tuning) {
            cs.pending.remove(pos);
            cs.observed.push((tuning, dur_ns));
        }
        if cs.pending.is_empty() {
            cs.winner = cs
                .observed
                .iter()
                .min_by_key(|(_, ns)| *ns)
                .map(|(c, _)| *c);
        }
    }

    /// Feed back a permanent probe failure: the tuning is retired from
    /// the class's rotation; if every candidate fails the class locks
    /// `candidates[0]` so callers still get a deterministic answer.
    pub fn observe_failure(&self, size: usize, world: usize, tuning: CollTuning) {
        let key = (size_class(size), world);
        let mut st = self.classes.lock();
        let Some(cs) = st.get_mut(&key) else { return };
        if cs.winner.is_some() {
            return;
        }
        if let Some(pos) = cs.pending.iter().position(|&c| c == tuning) {
            cs.pending.remove(pos);
            cs.failed.push(tuning);
        }
        if cs.pending.is_empty() {
            cs.winner = cs
                .observed
                .iter()
                .min_by_key(|(_, ns)| *ns)
                .map(|(c, _)| *c)
                .or(Some(self.candidates[0]));
        }
    }

    /// Tunings retired by [`CollectiveSelector::observe_failure`] for
    /// the (size, world) class.
    pub fn failures_for(&self, size: usize, world: usize) -> Vec<CollTuning> {
        self.classes
            .lock()
            .get(&(size_class(size), world))
            .map(|c| c.failed.clone())
            .unwrap_or_default()
    }

    /// The locked-in winner for the (size, world) class, if probing
    /// finished.
    pub fn winner_for(&self, size: usize, world: usize) -> Option<CollTuning> {
        self.classes
            .lock()
            .get(&(size_class(size), world))
            .and_then(|c| c.winner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_classes_separate_magnitudes() {
        assert_eq!(size_class(1024), size_class(1500));
        assert_ne!(size_class(1 << 20), size_class(64 << 20));
        assert_eq!(
            size_class(0),
            size_class(1),
            "degenerate sizes share a class"
        );
    }

    #[test]
    fn probes_each_candidate_then_locks_winner() {
        let sel = AdaptiveSelector::with_candidates(vec![
            TransferStrategy::Pinned,
            TransferStrategy::Mapped,
        ]);
        let s1 = sel.choose(1 << 20);
        assert_eq!(s1, TransferStrategy::Pinned);
        sel.observe(1 << 20, s1, 500);
        let s2 = sel.choose(1 << 20);
        assert_eq!(s2, TransferStrategy::Mapped);
        sel.observe(1 << 20, s2, 300);
        // Mapped measured faster: locked in.
        assert_eq!(sel.winner_for(1 << 20), Some(TransferStrategy::Mapped));
        for _ in 0..5 {
            assert_eq!(sel.choose(1 << 20), TransferStrategy::Mapped);
        }
    }

    #[test]
    fn classes_tune_independently() {
        let sel = AdaptiveSelector::with_candidates(vec![
            TransferStrategy::Pinned,
            TransferStrategy::Mapped,
        ]);
        // Small class: mapped wins.
        sel.observe(4 << 10, sel.choose(4 << 10), 100);
        sel.observe(4 << 10, sel.choose(4 << 10), 50);
        // Large class: pinned wins.
        sel.observe(32 << 20, sel.choose(32 << 20), 10);
        sel.observe(32 << 20, sel.choose(32 << 20), 20);
        assert_eq!(sel.winner_for(4 << 10), Some(TransferStrategy::Mapped));
        assert_eq!(sel.winner_for(32 << 20), Some(TransferStrategy::Pinned));
    }

    #[test]
    fn unsolicited_observations_are_ignored() {
        let sel = AdaptiveSelector::with_candidates(vec![TransferStrategy::Pinned]);
        sel.observe(1 << 10, TransferStrategy::Mapped, 1); // never offered
        assert_eq!(sel.winner_for(1 << 10), None);
    }

    #[test]
    #[should_panic(expected = "concrete")]
    fn auto_candidate_rejected() {
        AdaptiveSelector::with_candidates(vec![TransferStrategy::Auto]);
    }

    #[test]
    fn failed_probe_is_retired_instead_of_starving() {
        let sel = AdaptiveSelector::with_candidates(vec![
            TransferStrategy::Pinned,
            TransferStrategy::Mapped,
        ]);
        let s1 = sel.choose(1 << 20);
        assert_eq!(s1, TransferStrategy::Pinned);
        // The probe fails permanently. Before the fix this never reached
        // the selector, so `choose` handed out Pinned forever.
        sel.observe_failure(1 << 20, s1);
        assert_eq!(sel.failures_for(1 << 20), vec![TransferStrategy::Pinned]);
        let s2 = sel.choose(1 << 20);
        assert_eq!(s2, TransferStrategy::Mapped, "rotation moved on");
        sel.observe(1 << 20, s2, 300);
        // The surviving candidate wins; the failed one is never chosen.
        assert_eq!(sel.winner_for(1 << 20), Some(TransferStrategy::Mapped));
        assert_eq!(sel.choose(1 << 20), TransferStrategy::Mapped);
    }

    #[test]
    fn all_probes_failing_falls_back_to_primary_candidate() {
        let sel = AdaptiveSelector::with_candidates(vec![
            TransferStrategy::Pinned,
            TransferStrategy::Mapped,
        ]);
        sel.observe_failure(1 << 20, sel.choose(1 << 20));
        sel.observe_failure(1 << 20, sel.choose(1 << 20));
        // Every candidate failed: lock the primary rather than looping.
        assert_eq!(sel.winner_for(1 << 20), Some(TransferStrategy::Pinned));
        assert_eq!(sel.choose(1 << 20), TransferStrategy::Pinned);
    }

    #[test]
    fn peer_selector_tunes_each_peer_independently() {
        let sel =
            PeerSelector::with_candidates(vec![TransferStrategy::Rma, TransferStrategy::Pinned]);
        // Peer 1 (co-located): the RMA probe measures faster.
        assert_eq!(sel.choose(1, 1 << 20), TransferStrategy::Rma);
        sel.observe(1, 1 << 20, TransferStrategy::Rma, 100);
        sel.observe(1, 1 << 20, sel.choose(1, 1 << 20), 900);
        // Peer 7 (cross-pod): the NIC-side strategy wins.
        sel.observe(7, 1 << 20, sel.choose(7, 1 << 20), 900);
        sel.observe(7, 1 << 20, sel.choose(7, 1 << 20), 100);
        assert_eq!(sel.winner_for(1, 1 << 20), Some(TransferStrategy::Rma));
        assert_eq!(sel.winner_for(7, 1 << 20), Some(TransferStrategy::Pinned));
    }

    #[test]
    fn peer_selector_retires_failed_probe() {
        let sel =
            PeerSelector::with_candidates(vec![TransferStrategy::Rma, TransferStrategy::Pinned]);
        sel.observe_failure(3, 1 << 20, sel.choose(3, 1 << 20));
        assert_eq!(sel.failures_for(3, 1 << 20), vec![TransferStrategy::Rma]);
        sel.observe(3, 1 << 20, sel.choose(3, 1 << 20), 50);
        assert_eq!(sel.winner_for(3, 1 << 20), Some(TransferStrategy::Pinned));
    }

    #[test]
    fn failure_after_winner_locked_is_ignored() {
        let sel = AdaptiveSelector::with_candidates(vec![TransferStrategy::Pinned]);
        sel.observe(1 << 10, sel.choose(1 << 10), 100);
        assert_eq!(sel.winner_for(1 << 10), Some(TransferStrategy::Pinned));
        sel.observe_failure(1 << 10, TransferStrategy::Pinned);
        assert_eq!(sel.winner_for(1 << 10), Some(TransferStrategy::Pinned));
    }
}
