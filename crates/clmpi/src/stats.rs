//! Runtime transfer statistics: counts, bytes and virtual time per
//! transfer strategy and direction. Attach with [`crate::ClMpi::enable_stats`]
//! to audit which paths the automatic selection actually took — the
//! observability a production runtime would ship with.

use std::collections::BTreeMap;
use std::sync::Arc;

use simtime::plock::Mutex;
use simtime::SimNs;

/// Per-(direction, strategy) accumulator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StrategyStats {
    /// Transfers recorded.
    pub count: u64,
    /// Payload bytes moved.
    pub bytes: u64,
    /// Summed virtual duration (start of execution to completion).
    pub total_ns: SimNs,
}

/// Fault/retry counters accumulated alongside the per-strategy stats.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Wire chunks the sender observed as lost (each may be retried).
    /// Total across every drop reason.
    pub chunk_drops: u64,
    /// Chunks lost to random (Bernoulli) corruption — retryable.
    pub drops_random: u64,
    /// Chunks lost inside a scheduled link-down window — retryable.
    pub drops_link_down: u64,
    /// Chunks lost because an endpoint's node is dead — never retried;
    /// each such drop fails its transfer immediately.
    pub drops_node_down: u64,
    /// Retransmissions issued.
    pub retries: u64,
    /// Pipelined→pinned degradation switches taken.
    pub degraded: u64,
    /// Transfers that failed permanently (retry budget exhausted or the
    /// receiver timed out).
    pub failures: u64,
    /// Failures classified as a dead peer process (ULFM
    /// `MPI_ERR_PROC_FAILED` class) — a subset of `failures`.
    pub proc_failures: u64,
}

impl FaultStats {
    /// Field-wise sum (aggregating per-rank collectors).
    pub fn merge(self, other: FaultStats) -> FaultStats {
        FaultStats {
            chunk_drops: self.chunk_drops + other.chunk_drops,
            drops_random: self.drops_random + other.drops_random,
            drops_link_down: self.drops_link_down + other.drops_link_down,
            drops_node_down: self.drops_node_down + other.drops_node_down,
            retries: self.retries + other.retries,
            degraded: self.degraded + other.degraded,
            failures: self.failures + other.failures,
            proc_failures: self.proc_failures + other.proc_failures,
        }
    }
}

#[derive(Default)]
struct StatsInner {
    entries: BTreeMap<(String, String), StrategyStats>,
    faults: FaultStats,
}

/// A shareable statistics collector. Cloning shares the store.
#[derive(Clone, Default)]
pub struct TransferStats {
    inner: Arc<Mutex<StatsInner>>,
}

impl TransferStats {
    /// New empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record(&self, direction: &str, strategy: &str, bytes: usize, dur_ns: SimNs) {
        let mut st = self.inner.lock();
        let e = st
            .entries
            .entry((direction.to_string(), strategy.to_string()))
            .or_default();
        e.count += 1;
        e.bytes += bytes as u64;
        e.total_ns += dur_ns;
    }

    pub(crate) fn note_drop(&self, reason: minimpi::DropReason) {
        let mut st = self.inner.lock();
        st.faults.chunk_drops += 1;
        match reason {
            minimpi::DropReason::Random => st.faults.drops_random += 1,
            minimpi::DropReason::LinkDown => st.faults.drops_link_down += 1,
            minimpi::DropReason::NodeDown => st.faults.drops_node_down += 1,
        }
    }

    pub(crate) fn note_retry(&self) {
        self.inner.lock().faults.retries += 1;
    }

    pub(crate) fn note_degraded(&self) {
        self.inner.lock().faults.degraded += 1;
    }

    pub(crate) fn note_failure(&self) {
        self.inner.lock().faults.failures += 1;
    }

    pub(crate) fn note_proc_failure(&self) {
        let mut st = self.inner.lock();
        st.faults.failures += 1;
        st.faults.proc_failures += 1;
    }

    /// Fault/retry counters (all zero on a perfect fabric).
    pub fn faults(&self) -> FaultStats {
        self.inner.lock().faults
    }

    /// Stats for one (direction, strategy) pair, if any were recorded.
    pub fn get(&self, direction: &str, strategy: &str) -> Option<StrategyStats> {
        self.inner
            .lock()
            .entries
            .get(&(direction.to_string(), strategy.to_string()))
            .copied()
    }

    /// Total transfers recorded.
    pub fn total_count(&self) -> u64 {
        self.inner.lock().entries.values().map(|e| e.count).sum()
    }

    /// Total payload bytes recorded.
    pub fn total_bytes(&self) -> u64 {
        self.inner.lock().entries.values().map(|e| e.bytes).sum()
    }

    /// Render a report table (sorted by direction then strategy).
    pub fn report(&self) -> String {
        let st = self.inner.lock();
        let mut out =
            String::from("direction  strategy            count        bytes     avg MB/s\n");
        for ((dir, strat), e) in &st.entries {
            let mbps = if e.total_ns > 0 {
                e.bytes as f64 * 1e3 / e.total_ns as f64
            } else {
                f64::INFINITY
            };
            out.push_str(&format!(
                "{dir:<9}  {strat:<18}  {:>5}  {:>11}  {mbps:>11.1}\n",
                e.count, e.bytes
            ));
        }
        let f = st.faults;
        if f != FaultStats::default() {
            out.push_str(&format!(
                "faults: chunk_drops={} (random={} link_down={} node_down={}) \
                 retries={} degraded={} failures={} proc_failures={}\n",
                f.chunk_drops,
                f.drops_random,
                f.drops_link_down,
                f.drops_node_down,
                f.retries,
                f.degraded,
                f.failures,
                f.proc_failures
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_aggregates() {
        let s = TransferStats::new();
        s.record("send", "pinned", 1000, 10_000);
        s.record("send", "pinned", 3000, 30_000);
        s.record("recv", "mapped", 500, 5_000);
        let e = s.get("send", "pinned").expect("send/pinned entry recorded");
        assert_eq!(e.count, 2);
        assert_eq!(e.bytes, 4000);
        assert_eq!(e.total_ns, 40_000);
        assert_eq!(s.total_count(), 3);
        assert_eq!(s.total_bytes(), 4500);
        assert!(s.get("send", "mapped").is_none());
    }

    #[test]
    fn report_renders_rows() {
        let s = TransferStats::new();
        s.record("send", "pipelined(4M)", 4 << 20, 4_000_000);
        let r = s.report();
        assert!(r.contains("pipelined(4M)"));
        assert!(r.contains("send"));
    }

    #[test]
    fn clones_share_the_store() {
        let s = TransferStats::new();
        let s2 = s.clone();
        s2.record("recv", "pinned", 1, 1);
        assert_eq!(s.total_count(), 1);
    }

    #[test]
    fn fault_counters_accumulate_and_render() {
        let s = TransferStats::new();
        assert_eq!(s.faults(), FaultStats::default());
        assert!(!s.report().contains("faults:"));
        s.note_drop(minimpi::DropReason::Random);
        s.note_drop(minimpi::DropReason::NodeDown);
        s.note_retry();
        s.note_degraded();
        s.note_failure();
        let f = s.faults();
        assert_eq!(f.chunk_drops, 2);
        assert_eq!(f.drops_random, 1);
        assert_eq!(f.drops_link_down, 0);
        assert_eq!(f.drops_node_down, 1);
        assert_eq!(f.retries, 1);
        assert_eq!(f.degraded, 1);
        assert_eq!(f.failures, 1);
        assert_eq!(f.proc_failures, 0);
        assert!(s.report().contains("chunk_drops=2"));
        assert!(s.report().contains("node_down=1"));
    }

    #[test]
    fn proc_failure_counts_into_both_totals() {
        let s = TransferStats::new();
        s.note_proc_failure();
        let f = s.faults();
        assert_eq!(f.failures, 1);
        assert_eq!(f.proc_failures, 1);
        let merged = f.merge(f);
        assert_eq!(merged.failures, 2);
        assert_eq!(merged.proc_failures, 2);
    }
}
