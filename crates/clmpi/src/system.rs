//! System configurations: cluster + device + transfer-strategy policy.

use minicl::DeviceSpec;
use simnet::ClusterSpec;

use crate::strategy::TransferStrategy;

/// Everything the clMPI runtime needs to know about the system it runs on
/// (one per Table I system). The policy fields encode §V-B: "the current
/// implementation of the clMPI runtime can use either the pinned or mapped
/// data transfer for small messages, and the pipelined data transfer can
/// be performed for large messages … the mapped and pinned data transfers
/// are used for Cichlid and RICC, respectively."
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Interconnect + node inventory (Table I).
    pub cluster: ClusterSpec,
    /// GPU model (Table I).
    pub device: DeviceSpec,
    /// Strategy for messages below [`SystemConfig::pipeline_threshold`].
    pub small_message_strategy: TransferStrategy,
    /// Messages of at least this many bytes use the pipelined path.
    pub pipeline_threshold: usize,
    /// Default pipeline block size when the caller does not force one.
    pub default_pipeline_block: usize,
}

impl SystemConfig {
    /// Cichlid: GbE + Tesla C2070. Mapped transfers win for the small/
    /// medium messages GbE can carry, so the runtime prefers them.
    pub fn cichlid() -> Self {
        SystemConfig {
            cluster: ClusterSpec::cichlid(),
            device: DeviceSpec::tesla_c2070(),
            small_message_strategy: TransferStrategy::Mapped,
            // On GbE the network is the bottleneck; pipelining only helps
            // for very large messages.
            pipeline_threshold: 16 << 20,
            default_pipeline_block: 1 << 20,
        }
    }

    /// RICC: InfiniBand DDR (IPoIB) + Tesla C1060. Mapped streaming on the
    /// C1060 is slow, so small messages use the pinned path and large ones
    /// the pipelined path.
    pub fn ricc() -> Self {
        SystemConfig {
            cluster: ClusterSpec::ricc(),
            device: DeviceSpec::tesla_c1060(),
            small_message_strategy: TransferStrategy::Pinned,
            pipeline_threshold: 1 << 20,
            default_pipeline_block: 4 << 20,
        }
    }

    /// CXL-Pod: 16 nodes in pods of four around CXL 2.0 memory pools,
    /// 100GbE between pods, NVIDIA A30 devices. Small messages stay on
    /// the pinned path (RoCE latency dwarfs pin setup on Gen4 PCIe);
    /// one-sided window traffic rides the pool port when ranks share one.
    pub fn cxl_pod() -> Self {
        SystemConfig {
            cluster: ClusterSpec::cxl_pod(),
            device: DeviceSpec::a30(),
            small_message_strategy: TransferStrategy::Pinned,
            pipeline_threshold: 1 << 20,
            default_pipeline_block: 4 << 20,
        }
    }

    /// The preset named `name` ("cichlid", "ricc", or "cxl-pod"),
    /// case-insensitive.
    pub fn by_name(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "cichlid" => Some(Self::cichlid()),
            "ricc" => Some(Self::ricc()),
            "cxl-pod" | "cxl_pod" | "cxlpod" => Some(Self::cxl_pod()),
            _ => None,
        }
    }

    /// The strategy the runtime would use for a `size`-byte transfer when
    /// the application forces `forced` (or `Auto`).
    pub fn resolve(&self, forced: TransferStrategy, size: usize) -> TransferStrategy {
        match forced {
            TransferStrategy::Auto => {
                if size >= self.pipeline_threshold {
                    TransferStrategy::Pipelined(self.auto_block(size))
                } else {
                    self.small_message_strategy
                }
            }
            TransferStrategy::Pipelined(0) => TransferStrategy::Pipelined(self.auto_block(size)),
            other => other,
        }
    }

    /// Automatic pipeline block size: grows with the message (paper §V-B:
    /// "the optimal pipeline buffer size changes depending at least on the
    /// message size"), clamped to [default/4, 16 MiB] and never larger
    /// than the message itself.
    pub fn auto_block(&self, size: usize) -> usize {
        let target = (size / 8).next_power_of_two().max(1);
        target
            .clamp(self.default_pipeline_block / 4, 16 << 20)
            .min(size.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_encode_paper_policy() {
        let c = SystemConfig::cichlid();
        assert_eq!(c.small_message_strategy, TransferStrategy::Mapped);
        let r = SystemConfig::ricc();
        assert_eq!(r.small_message_strategy, TransferStrategy::Pinned);
        assert!(r.pipeline_threshold < c.pipeline_threshold);
    }

    #[test]
    fn by_name_is_case_insensitive() {
        assert!(SystemConfig::by_name("Cichlid").is_some());
        assert!(SystemConfig::by_name("RICC").is_some());
        assert!(SystemConfig::by_name("summit").is_none());
    }

    #[test]
    fn auto_resolution_switches_at_threshold() {
        let r = SystemConfig::ricc();
        assert_eq!(
            r.resolve(TransferStrategy::Auto, 64 << 10),
            TransferStrategy::Pinned
        );
        match r.resolve(TransferStrategy::Auto, 64 << 20) {
            TransferStrategy::Pipelined(b) => assert!(b >= 1 << 20),
            other => panic!("expected pipelined, got {other:?}"),
        }
    }

    #[test]
    fn forced_strategy_is_respected() {
        let c = SystemConfig::cichlid();
        assert_eq!(
            c.resolve(TransferStrategy::Pinned, 64 << 20),
            TransferStrategy::Pinned
        );
    }

    #[test]
    fn auto_block_grows_with_message_and_is_bounded() {
        let r = SystemConfig::ricc();
        let b1 = r.auto_block(2 << 20);
        let b2 = r.auto_block(128 << 20);
        assert!(b2 >= b1);
        assert!(b2 <= 16 << 20);
        assert!(r.auto_block(10) <= 10usize.next_power_of_two().max(1 << 20));
    }
}
