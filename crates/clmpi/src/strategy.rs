//! The three data-transfer implementations of paper §III, as cost/
//! scheduling logic over the simulated PCIe and network resources.
//!
//! All three move the same real bytes; they differ in **which resources
//! they occupy, in what order, and with what software overheads**:
//!
//! * **Pinned** — stage the device buffer into pinned host memory (PCIe at
//!   the pinned rate, plus a staging-setup cost), then send over the
//!   network. Two serialized stages.
//! * **Mapped** — map the device buffer and let the NIC stream straight
//!   from/to it: one fused stage whose rate is the min of the network and
//!   the device's mapped (zero-copy) PCIe rate, plus a small map cost.
//! * **Pipelined(B)** — split into blocks of `B` bytes; block *i*'s PCIe
//!   stage overlaps block *i−1*'s network stage (paper [7]'s technique).
//!
//! The *sender* decides the wire chunking; the *receiver* adapts to
//! whatever chunks arrive (it drains messages until the expected byte
//! count is reached), so mixed strategies cannot deadlock.

use simtime::SimNs;

/// A data-transfer implementation choice (paper §III / §V-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferStrategy {
    /// Stage through pinned host memory, then network (two stages).
    Pinned,
    /// Zero-copy map: fused PCIe+network stage.
    Mapped,
    /// Pipeline with the given block size in bytes (`Pipelined(0)` =
    /// runtime-chosen block).
    Pipelined(usize),
    /// One-sided RMA: stage to the window segment and let the fabric's
    /// class-routed transport (loopback / CXL pool port / NIC) carry it.
    /// Only meaningful on window-backed (`MPI_CL_MEM`-as-window) paths.
    Rma,
    /// Let the runtime choose per system and message size.
    Auto,
}

impl TransferStrategy {
    /// Short display name ("pinned", "mapped", "pipelined(4M)", "auto").
    pub fn name(&self) -> String {
        match self {
            TransferStrategy::Pinned => "pinned".into(),
            TransferStrategy::Mapped => "mapped".into(),
            TransferStrategy::Pipelined(0) => "pipelined(auto)".into(),
            TransferStrategy::Pipelined(b) if b % (1 << 20) == 0 => {
                format!("pipelined({}M)", b >> 20)
            }
            TransferStrategy::Pipelined(b) => format!("pipelined({b}B)"),
            TransferStrategy::Rma => "rma".into(),
            TransferStrategy::Auto => "auto".into(),
        }
    }
}

/// How a derived (noncontiguous) datatype is canonicalized onto the wire
/// — the TEMPI axis (PAPERS.md): who gathers the type map into contiguous
/// bytes, and whether the pack overlaps the transfer. Orthogonal to
/// [`TransferStrategy`]: the pack mode decides *who* packs, the strategy
/// decides how the packed bytes cross PCIe and the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PackMode {
    /// Gather/scatter segment-by-segment across PCIe: every type-map
    /// segment pays the full staged latency. This is what stock MPI
    /// implementations do with `MPI_Type_vector` on device memory, and
    /// why they lose badly on strided halos.
    HostPack,
    /// One on-device pack/unpack kernel canonicalizes the whole type map
    /// in device memory; the packed payload crosses PCIe and the wire as
    /// a single contiguous message.
    DevicePack,
    /// Device pack fused into the pipelined transfer: the packed payload
    /// is chunked, and chunk *k*'s pack kernel overlaps chunk *k−1*'s
    /// PCIe and network stages.
    PipelinedPack,
}

impl PackMode {
    /// Short display name for stats/bench keys.
    pub fn name(&self) -> &'static str {
        match self {
            PackMode::HostPack => "host-pack",
            PackMode::DevicePack => "device-pack",
            PackMode::PipelinedPack => "pipelined-pack",
        }
    }
}

/// A fully-resolved plan for one transfer (strategy + chunk layout).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolvedStrategy {
    /// The concrete strategy (never `Auto`, never `Pipelined(0)`).
    pub strategy: TransferStrategy,
    /// `(offset, len)` wire chunks, in transmission order.
    pub chunks: Vec<(usize, usize)>,
}

impl ResolvedStrategy {
    /// Plan a transfer of `size` bytes under `strategy`.
    pub fn plan(strategy: TransferStrategy, size: usize) -> Self {
        match strategy {
            TransferStrategy::Pinned | TransferStrategy::Mapped | TransferStrategy::Rma => {
                ResolvedStrategy {
                    strategy,
                    chunks: vec![(0, size)],
                }
            }
            TransferStrategy::Pipelined(block) => {
                assert!(block > 0, "resolve Pipelined(0) via SystemConfig first");
                ResolvedStrategy {
                    strategy,
                    chunks: chunk_layout(size, block),
                }
            }
            TransferStrategy::Auto => panic!("resolve Auto via SystemConfig first"),
        }
    }
}

/// Split `size` bytes into `(offset, len)` blocks of at most `block`.
pub fn chunk_layout(size: usize, block: usize) -> Vec<(usize, usize)> {
    assert!(block > 0, "block size must be positive");
    if size == 0 {
        return vec![(0, 0)];
    }
    let mut out = Vec::with_capacity(size.div_ceil(block));
    let mut off = 0;
    while off < size {
        let len = block.min(size - off);
        out.push((off, len));
        off += len;
    }
    out
}

/// Analytic single-message cost of each strategy on idle links — used by
/// tests and by the Fig. 8 harness to cross-check the simulated timings.
pub mod analytic {
    use super::*;
    use crate::SystemConfig;

    /// End-to-end ns for one `size`-byte device→device transfer on idle
    /// resources under `strategy` (must be concrete).
    pub fn transfer_ns(sys: &SystemConfig, strategy: TransferStrategy, size: usize) -> SimNs {
        let net = &sys.cluster.link;
        let pcie = &sys.device.pcie;
        match strategy {
            TransferStrategy::Pinned => {
                pcie.pin_setup_ns
                    + pcie.staged_ns(size, true)      // d2h
                    + net.message_ns(size)            // network
                    + pcie.pin_setup_ns
                    + pcie.staged_ns(size, true) // h2d
            }
            TransferStrategy::Mapped => {
                let stream = (size as f64 * 1e9 / pcie.mapped_bps).round() as SimNs;
                let fused = net.injection_ns(size).max(stream);
                2 * pcie.map_setup_ns + fused + net.latency_ns
            }
            TransferStrategy::Pipelined(block) => {
                let plan = ResolvedStrategy::plan(TransferStrategy::Pipelined(block), size);
                // Per-chunk stage times; steady state is the max stage.
                let mut d2h_free = pcie.pin_setup_ns;
                let mut net_free = 0;
                let mut h2d_free = 0;
                let mut done = 0;
                for &(_, len) in &plan.chunks {
                    let d2h_end = d2h_free + pcie.staged_ns(len, true);
                    d2h_free = d2h_end;
                    let net_start = d2h_end.max(net_free);
                    let net_end = net_start + net.injection_ns(len);
                    net_free = net_end;
                    let arr = net_end + net.latency_ns;
                    let h2d_start = arr.max(h2d_free);
                    let h2d_end = h2d_start + pcie.staged_ns(len, true);
                    h2d_free = h2d_end;
                    done = h2d_end;
                }
                done + pcie.pin_setup_ns
            }
            TransferStrategy::Rma => {
                // One-sided put into a host-resident window: device→host
                // staging then one wire message on the pool port when the
                // cluster has one (co-located ranks), else the NIC. No
                // target-side h2d — the window *is* host memory.
                let wire = sys.cluster.cxl.as_ref().map_or(net, |c| &c.link);
                pcie.pin_setup_ns + pcie.staged_ns(size, true) + wire.message_ns(size)
            }
            TransferStrategy::Auto => transfer_ns(sys, sys.resolve(strategy, size), size),
        }
    }

    /// Sustained bandwidth (bytes/s) implied by [`transfer_ns`].
    pub fn sustained_bps(sys: &SystemConfig, strategy: TransferStrategy, size: usize) -> f64 {
        size as f64 * 1e9 / transfer_ns(sys, strategy, size) as f64
    }

    /// Coarse idle-resource model of the chunked broadcast machines in
    /// the collective module: stage-in, sender-side chunk serialization,
    /// store-and-forward drain, stage-out. Used by the bench binaries to
    /// cross-check simulated collective timings — never by the engine.
    ///
    /// Flat re-injects every chunk once per destination on the root NIC
    /// (the serialization the pipelined algorithms exist to avoid); tree
    /// pays the root's `⌈log₂ n⌉`-way fan-out then drains through
    /// `⌈log₂ n⌉` hops; ring injects each chunk once and drains through
    /// `n − 1` hops, one max-size chunk per hop.
    pub fn bcast_ns(
        sys: &SystemConfig,
        algo: crate::collective::CollAlgo,
        size: usize,
        world: usize,
        block: usize,
    ) -> SimNs {
        use crate::collective::CollAlgo;
        if world <= 1 {
            return 0;
        }
        let net = &sys.cluster.link;
        let pcie = &sys.device.pcie;
        // Wire chunks carry the 1-byte algorithm header.
        let inj: Vec<SimNs> = chunk_layout(size, block)
            .iter()
            .map(|&(_, len)| net.injection_ns(len + 1))
            .collect();
        let total_inj: SimNs = inj.iter().sum();
        let max_inj = inj.iter().copied().max().unwrap_or(0);
        let depth = sys_log2_ceil(world);
        let (fanout, hops) = match algo {
            CollAlgo::Flat => (world - 1, 1),
            CollAlgo::Tree => (depth, depth),
            CollAlgo::Ring => (1, world - 1),
        };
        pcie.pin_setup_ns
            + pcie.staged_ns(size, true)
            + fanout as SimNs * total_inj
            + hops as SimNs * net.latency_ns
            + hops.saturating_sub(1) as SimNs * max_inj
            + pcie.pin_setup_ns
            + pcie.staged_ns(size, true)
    }

    /// Sustained broadcast bandwidth (payload bytes/s) implied by
    /// [`bcast_ns`].
    pub fn bcast_sustained_bps(
        sys: &SystemConfig,
        algo: crate::collective::CollAlgo,
        size: usize,
        world: usize,
        block: usize,
    ) -> f64 {
        size as f64 * 1e9 / bcast_ns(sys, algo, size, world, block) as f64
    }

    fn sys_log2_ceil(n: usize) -> usize {
        n.next_power_of_two().trailing_zeros() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::analytic::*;
    use super::*;
    use crate::SystemConfig;

    #[test]
    fn chunk_layout_covers_exactly() {
        let chunks = chunk_layout(10, 3);
        assert_eq!(chunks, vec![(0, 3), (3, 3), (6, 3), (9, 1)]);
        let total: usize = chunks.iter().map(|c| c.1).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn chunk_layout_single_when_block_ge_size() {
        assert_eq!(chunk_layout(5, 8), vec![(0, 5)]);
        assert_eq!(chunk_layout(0, 8), vec![(0, 0)]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_block_rejected() {
        chunk_layout(1, 0);
    }

    #[test]
    fn names_render() {
        assert_eq!(TransferStrategy::Pinned.name(), "pinned");
        assert_eq!(TransferStrategy::Pipelined(4 << 20).name(), "pipelined(4M)");
        assert_eq!(TransferStrategy::Auto.name(), "auto");
    }

    #[test]
    fn modeled_ring_bcast_beats_flat_by_2x_at_fig8_scale() {
        // The acceptance-bar shape: 42 MB across 8 ranks on RICC. Flat
        // re-injects the payload 7 times on the root NIC; ring injects
        // once and drains 7 hops of one chunk each.
        use crate::collective::CollAlgo;
        let sys = SystemConfig::ricc();
        let (size, world, block) = (41_990_400, 8, 4 << 20);
        let flat = bcast_ns(&sys, CollAlgo::Flat, size, world, block);
        let tree = bcast_ns(&sys, CollAlgo::Tree, size, world, block);
        let ring = bcast_ns(&sys, CollAlgo::Ring, size, world, block);
        assert!(ring * 2 < flat, "ring {ring} vs flat {flat}");
        assert!(tree < flat, "tree {tree} vs flat {flat}");
        assert!(
            bcast_sustained_bps(&sys, CollAlgo::Ring, size, world, block)
                > 2.0 * bcast_sustained_bps(&sys, CollAlgo::Flat, size, world, block)
        );
        assert_eq!(bcast_ns(&sys, CollAlgo::Ring, size, 1, block), 0);
    }

    #[test]
    fn ricc_pipelined_beats_pinned_beats_mapped_for_large_messages() {
        // The Fig. 8(b) ordering.
        let sys = SystemConfig::ricc();
        let size = 32 << 20;
        let pinned = transfer_ns(&sys, TransferStrategy::Pinned, size);
        let mapped = transfer_ns(&sys, TransferStrategy::Mapped, size);
        let piped = transfer_ns(&sys, TransferStrategy::Pipelined(4 << 20), size);
        assert!(piped < pinned, "pipelining overlaps the stages");
        assert!(pinned < mapped, "C1060 mapped streaming is slow");
    }

    #[test]
    fn cichlid_strategies_converge_on_gbe() {
        // Fig. 8(a): on GbE all three are network-bound for large messages.
        let sys = SystemConfig::cichlid();
        let size = 32 << 20;
        let pinned = sustained_bps(&sys, TransferStrategy::Pinned, size);
        let mapped = sustained_bps(&sys, TransferStrategy::Mapped, size);
        let piped = sustained_bps(&sys, TransferStrategy::Pipelined(4 << 20), size);
        let lo = pinned.min(mapped).min(piped);
        let hi = pinned.max(mapped).max(piped);
        assert!(hi / lo < 1.15, "within ~15% of each other: {lo} vs {hi}");
    }

    #[test]
    fn cichlid_mapped_wins_small_messages() {
        // Fig. 8(a): "the mapped data transfer is faster for small
        // messages on Cichlid due to the short latency".
        let sys = SystemConfig::cichlid();
        let size = 64 << 10;
        let pinned = transfer_ns(&sys, TransferStrategy::Pinned, size);
        let mapped = transfer_ns(&sys, TransferStrategy::Mapped, size);
        assert!(mapped < pinned);
    }

    #[test]
    fn pipeline_block_tradeoff_matches_paper() {
        // Fig. 8(b): small blocks win for small messages, large blocks for
        // large messages.
        let sys = SystemConfig::ricc();
        let small_msg = 4 << 20;
        let big_msg = 256 << 20;
        let b1 = TransferStrategy::Pipelined(1 << 20);
        let b16 = TransferStrategy::Pipelined(16 << 20);
        assert!(
            transfer_ns(&sys, b1, small_msg) < transfer_ns(&sys, b16, small_msg),
            "1M block pipelines a 4M message; 16M cannot"
        );
        assert!(
            transfer_ns(&sys, b16, big_msg) < transfer_ns(&sys, b1, big_msg),
            "16M block amortizes per-chunk overhead on a 256M message"
        );
    }
}
