//! A hand-rolled Rust lexer, just deep enough for invariant checking.
//!
//! The CI grep gates this tool replaces matched *bytes*: a `.wait(` inside
//! a doc comment or an error-message string tripped them, and nothing
//! subtler than a regex could be expressed at all. This lexer classifies
//! every byte of a source file as exactly one of: identifier, numeric
//! literal, string/char/byte literal, lifetime, comment, or punctuation —
//! so passes can ask "is this token *code*?" and reason about small token
//! sequences (`.` `wait` `(`, `-` `14`, `#[cfg(test)] mod … { … }`).
//!
//! It is deliberately not a full lexer: float fine-structure, tuple-index
//! disambiguation, and exotic literal suffixes are lumped into coarse
//! buckets, because no pass needs them. What it does get right — because
//! the passes depend on it — is the *boundaries* of comments (line, block,
//! nested block), of every string flavor (plain, raw with `#` fences,
//! byte, byte-raw, C), of char literals vs. lifetimes, and line numbers.

/// One classified token. `line` is 1-based and refers to the line the
/// token *starts* on (multi-line tokens — block comments, raw strings —
/// span further).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub tok: Tok,
    pub line: u32,
}

/// Token classes. String-like literals do not retain their contents:
/// passes only ever need to know the region is *not* code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword. Raw identifiers (`r#match`) are stored
    /// without the `r#` prefix.
    Ident(String),
    /// Integer literal. `value` is `None` when the literal overflows
    /// `u128` or uses a form we do not evaluate (never in this tree).
    Int { text: String, value: Option<u128> },
    /// Float literal (anything with a `.` fraction or exponent).
    Float(String),
    /// String-ish literal: `"…"`, `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`,
    /// `c"…"`, or a char/byte-char literal.
    StrLike,
    /// Lifetime such as `'a` or `'static` (also the `'label:` of loops).
    Lifetime(String),
    /// `// …` comment (including `///` and `//!` doc comments), content
    /// stored without the leading slashes.
    LineComment(String),
    /// `/* … */` comment (nesting folded in), content stored without the
    /// delimiters.
    BlockComment(String),
    /// Any other single character of punctuation.
    Punct(char),
}

impl Tok {
    /// True for tokens that are part of the program text rather than
    /// commentary. String-like literals count as code (they exist at
    /// runtime) but no pass matches inside them.
    pub fn is_comment(&self) -> bool {
        matches!(self, Tok::LineComment(_) | Tok::BlockComment(_))
    }
}

/// Lex an entire source file. Never fails: unterminated literals and
/// stray bytes degrade to punctuation/StrLike rather than aborting, so a
/// half-edited file still produces diagnostics instead of a tool crash.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        chars: src.char_indices().collect(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run(src)
}

struct Lexer {
    chars: Vec<(usize, char)>,
    pos: usize,
    line: u32,
    out: Vec<Token>,
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).map(|&(_, c)| c)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push(&mut self, tok: Tok, line: u32) {
        self.out.push(Token { tok, line });
    }

    fn run(mut self, _src: &str) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '\'' => self.quote(line),
                '"' => {
                    self.string_body(0, false);
                    self.push(Tok::StrLike, line);
                }
                c if c.is_ascii_digit() => self.number(line),
                c if is_ident_start(c) => self.ident_or_prefixed_literal(line),
                _ => {
                    self.bump();
                    self.push(Tok::Punct(c), line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self, line: u32) {
        self.bump();
        self.bump(); // consume `//`
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(Tok::LineComment(text), line);
    }

    fn block_comment(&mut self, line: u32) {
        self.bump();
        self.bump(); // consume `/*`
        let mut depth = 1usize;
        let mut text = String::new();
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    text.push_str("/*");
                    self.bump();
                    self.bump();
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    if depth > 0 {
                        text.push_str("*/");
                    }
                    self.bump();
                    self.bump();
                }
                (Some(c), _) => {
                    text.push(c);
                    self.bump();
                }
                (None, _) => break, // unterminated: treat EOF as close
            }
        }
        self.push(Tok::BlockComment(text), line);
    }

    /// `'` starts either a char literal or a lifetime. Rust's rule: it is
    /// a char literal iff a closing `'` follows the (possibly escaped)
    /// payload; `'a` with no closing quote is a lifetime.
    fn quote(&mut self, line: u32) {
        self.bump(); // consume `'`
        match self.peek(0) {
            Some('\\') => {
                // Escaped char literal: consume the escape, then to `'`.
                self.bump();
                self.bump(); // the escaped character (or u of \u{…})
                while let Some(c) = self.peek(0) {
                    self.bump();
                    if c == '\'' {
                        break;
                    }
                }
                self.push(Tok::StrLike, line);
            }
            Some(c) if is_ident_start(c) => {
                // `'a'` → char; `'abc` (no close) → lifetime.
                let mut name = String::new();
                while let Some(c) = self.peek(0) {
                    if !is_ident_continue(c) {
                        break;
                    }
                    name.push(c);
                    self.bump();
                }
                if self.peek(0) == Some('\'') {
                    self.bump();
                    self.push(Tok::StrLike, line);
                } else {
                    self.push(Tok::Lifetime(name), line);
                }
            }
            Some(_) => {
                // `' '`, `'.'`, digits, …: plain char literal.
                self.bump();
                if self.peek(0) == Some('\'') {
                    self.bump();
                }
                self.push(Tok::StrLike, line);
            }
            None => self.push(Tok::Punct('\''), line),
        }
    }

    /// Body of a `"`-delimited string opened by `hashes` `#` fence chars
    /// (0 for plain strings). Backslash escapes are honored unless `raw`:
    /// raw strings — fenced or not — have no escapes, matching Rust.
    fn string_body(&mut self, hashes: usize, raw: bool) {
        self.bump(); // consume opening `"`
        while let Some(c) = self.peek(0) {
            if c == '\\' && !raw {
                self.bump();
                self.bump(); // skip escaped char
                continue;
            }
            if c == '"' {
                // A raw string closes only on `"` followed by its fence.
                let closes = (0..hashes).all(|i| self.peek(1 + i) == Some('#'));
                if closes {
                    self.bump();
                    for _ in 0..hashes {
                        self.bump();
                    }
                    return;
                }
            }
            self.bump();
        }
    }

    fn number(&mut self, line: u32) {
        let mut text = String::new();
        let mut float = false;
        if self.peek(0) == Some('0')
            && matches!(self.peek(1), Some('x' | 'o' | 'b' | 'X' | 'O' | 'B'))
        {
            text.push(self.bump().expect("peeked digit"));
            text.push(self.bump().expect("peeked radix"));
            while let Some(c) = self.peek(0) {
                if c.is_ascii_alphanumeric() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
        } else {
            while let Some(c) = self.peek(0) {
                if c.is_ascii_alphanumeric() || c == '_' {
                    if matches!(c, 'e' | 'E') && matches!(self.peek(1), Some('+' | '-')) && float {
                        // exponent sign of a float like 1.5e-3
                        text.push(c);
                        self.bump();
                        text.push(self.bump().expect("peeked sign"));
                        continue;
                    }
                    text.push(c);
                    self.bump();
                } else if c == '.' {
                    // `1.5` continues the number; `1..n` and `1.method()`
                    // do not.
                    match self.peek(1) {
                        Some(d) if d.is_ascii_digit() => {
                            float = true;
                            text.push(c);
                            self.bump();
                        }
                        _ => break,
                    }
                } else {
                    break;
                }
            }
        }
        let tok = if float || text.contains('.') {
            Tok::Float(text)
        } else {
            let value = int_value(&text);
            Tok::Int { text, value }
        };
        self.push(tok, line);
    }

    /// An ident-start character begins an identifier — unless it is one
    /// of Rust's literal prefixes (`r"`, `r#"`, `b"`, `b'`, `br"`, `c"`,
    /// `cr#"`) or a raw identifier (`r#ident`).
    fn ident_or_prefixed_literal(&mut self, line: u32) {
        let c0 = self.peek(0).expect("caller peeked");
        // Longest literal prefixes first.
        let prefix2: String = [self.peek(0), self.peek(1)].into_iter().flatten().collect();
        let (skip, hashes) = if matches!(prefix2.as_str(), "br" | "cr") {
            (2, self.count_hashes(2))
        } else if matches!(c0, 'r' | 'b' | 'c') {
            (1, self.count_hashes(1))
        } else {
            (0, None)
        };
        if skip > 0 {
            // `r`, `br`, `cr` prefixes mean raw: no backslash escapes.
            let raw = prefix2.starts_with('r') && skip == 1 || skip == 2;
            if let Some(h) = hashes {
                // A fenced or plain string with this prefix.
                if self.peek(skip + h) == Some('"') {
                    for _ in 0..(skip + h) {
                        self.bump();
                    }
                    self.string_body(h, raw);
                    self.push(Tok::StrLike, line);
                    return;
                }
                // `r#ident` raw identifier (only r, and only with one #).
                if c0 == 'r' && h == 1 {
                    if let Some(c) = self.peek(2) {
                        if is_ident_start(c) {
                            self.bump();
                            self.bump(); // r#
                            let name = self.ident_text();
                            self.push(Tok::Ident(name), line);
                            return;
                        }
                    }
                }
            }
            if skip == 1 && c0 == 'b' && self.peek(1) == Some('\'') {
                // Byte char literal b'x'.
                self.bump();
                self.quote(line);
                // quote() already pushed StrLike
                return;
            }
        }
        let name = self.ident_text();
        self.push(Tok::Ident(name), line);
    }

    /// If the characters after `at` are `#…#"` or `"`, return the number
    /// of `#` fence characters; otherwise `None` (not a string prefix).
    fn count_hashes(&self, at: usize) -> Option<usize> {
        let mut h = 0;
        while self.peek(at + h) == Some('#') {
            h += 1;
        }
        if self.peek(at + h) == Some('"') || (h == 1 && at == 1) {
            // `h==1 && at==1` also admits `r#ident`, resolved by caller.
            Some(h)
        } else {
            None
        }
    }

    fn ident_text(&mut self) -> String {
        let mut name = String::new();
        while let Some(c) = self.peek(0) {
            if !is_ident_continue(c) {
                break;
            }
            name.push(c);
            self.bump();
        }
        name
    }
}

/// Evaluate an integer literal's value: strips `_` separators and any
/// type suffix, honors `0x`/`0o`/`0b` radices.
fn int_value(text: &str) -> Option<u128> {
    let clean: String = text.chars().filter(|&c| c != '_').collect();
    let (radix, digits) = match clean.get(..2) {
        Some("0x") | Some("0X") => (16, &clean[2..]),
        Some("0o") | Some("0O") => (8, &clean[2..]),
        Some("0b") | Some("0B") => (2, &clean[2..]),
        _ => (10, clean.as_str()),
    };
    // Strip a type suffix (`u8`, `i64`, `usize`, …): the first char that
    // is not a digit of the radix starts the suffix.
    let end = digits
        .char_indices()
        .find(|&(_, c)| !c.is_digit(radix))
        .map(|(i, _)| i)
        .unwrap_or(digits.len());
    if end == 0 {
        return None;
    }
    u128::from_str_radix(&digits[..end], radix).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).into_iter().map(|t| t.tok).collect()
    }

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn line_comments_and_doc_comments() {
        let toks = kinds("let x = 1; // trailing .wait( here\n/// doc .recv(\ny");
        assert!(toks.contains(&Tok::LineComment(" trailing .wait( here".into())));
        assert!(toks.contains(&Tok::LineComment("/ doc .recv(".into())));
        // the forbidden names never surface as identifiers
        assert_eq!(idents("// .wait( advance_ns(\nok"), vec!["ok"]);
    }

    #[test]
    fn block_comments_nest() {
        let toks = kinds("a /* outer /* inner */ still comment */ b");
        assert_eq!(
            toks,
            vec![
                Tok::Ident("a".into()),
                Tok::BlockComment(" outer /* inner */ still comment ".into()),
                Tok::Ident("b".into()),
            ]
        );
    }

    #[test]
    fn unterminated_block_comment_reaches_eof() {
        let toks = kinds("a /* never closed");
        assert_eq!(toks[0], Tok::Ident("a".into()));
        assert_eq!(toks[1], Tok::BlockComment(" never closed".into()));
    }

    #[test]
    fn strings_hide_their_contents() {
        assert_eq!(idents(r#"let m = "x.wait(y)"; ok"#), vec!["let", "m", "ok"]);
        // escaped quote does not close the string
        assert_eq!(idents(r#"f("a \" .recv( b"); ok"#), vec!["f", "ok"]);
    }

    #[test]
    fn raw_strings_with_fences() {
        assert_eq!(
            idents(r###"let s = r#"has "quotes" and .wait( text"#; ok"###),
            vec!["let", "s", "ok"]
        );
        // an unfenced raw string
        assert_eq!(idents(r#"r"plain .recv(" ok"#), vec!["ok"]);
        // backslash is NOT an escape in raw strings
        assert_eq!(idents(r#"r"ends with \" then_code"#), vec!["then_code"]);
    }

    #[test]
    fn byte_and_c_string_literals() {
        assert_eq!(idents(r#"b"bytes .wait(" ok"#), vec!["ok"]);
        assert_eq!(idents(r##"br#"raw bytes"# ok"##), vec!["ok"]);
        assert_eq!(idents(r#"c"cstr" ok"#), vec!["ok"]);
        // byte char
        assert_eq!(idents(r#"b'x' ok"#), vec!["ok"]);
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        // 'a' is a char, 'a (no close) is a lifetime
        let toks = kinds("let c = 'w'; fn f<'a>(x: &'a str) {}");
        assert!(toks.contains(&Tok::StrLike));
        assert!(toks.contains(&Tok::Lifetime("a".into())));
        // escaped quote char literal
        assert_eq!(idents(r"let q = '\''; ok"), vec!["let", "q", "ok"]);
        // 'static lifetime
        assert!(kinds("&'static str").contains(&Tok::Lifetime("static".into())));
    }

    #[test]
    fn raw_identifiers() {
        assert_eq!(idents("r#match + other"), vec!["match", "other"]);
    }

    #[test]
    fn integer_values_with_radix_separator_suffix() {
        let vals: Vec<Option<u128>> = lex("14 1_100 0x2c 0b1110 1100i32 5usize")
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Int { value, .. } => Some(value),
                _ => None,
            })
            .collect();
        assert_eq!(
            vals,
            vec![
                Some(14),
                Some(1100),
                Some(0x2c),
                Some(14),
                Some(1100),
                Some(5)
            ]
        );
    }

    #[test]
    fn floats_and_ranges() {
        let toks = kinds("1.5e-3 + 1..4 + x.wait()");
        assert!(toks.contains(&Tok::Float("1.5e-3".into())));
        // `1..4` lexes as Int, Punct('.'), Punct('.'), Int
        assert!(toks.contains(&Tok::Int {
            text: "1".into(),
            value: Some(1)
        }));
        assert!(toks.contains(&Tok::Int {
            text: "4".into(),
            value: Some(4)
        }));
        assert!(toks.contains(&Tok::Ident("wait".into())));
    }

    #[test]
    fn line_numbers_are_1_based_and_span_multiline_tokens() {
        let toks = lex("a\n/* two\nlines */\nb");
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2); // comment starts on line 2
        assert_eq!(toks[2].line, 4); // b lands after the comment's newline
    }
}
