//! `clmpi-check` — a dependency-free, AST-aware invariant checker for
//! the clmpi workspace.
//!
//! ### Why this exists
//!
//! PR 2's progress engine made the runtime's correctness rest on
//! *structural* invariants — "engine.rs never blocks or advances the
//! clock", "every blocking call in the control plane carries a
//! `// blocking-api:` marker" — that were enforced by two regex greps in
//! CI. Greps match inside strings, comments, and doc text, and cannot
//! express anything deeper (attribute scope, token adjacency, counts
//! against a baseline). This crate replaces them with a hand-rolled
//! comment/string/raw-string-aware Rust [`lexer`] and a small pass
//! framework ([`passes`]) running five checks:
//!
//! | id | pass | invariant |
//! |----|------|-----------|
//! | P1 | `non-blocking-engine` | engine.rs never blocks or advances virtual time |
//! | P2 | `blocking-marker` | clmpi blocking calls carry `// blocking-api: <why>` |
//! | P3 | `panic-ratchet` | unwrap/expect/panic! counts only move down ([`baseline`]) |
//! | P4 | `determinism` | no wall-clock, real sleeps, or unordered collections |
//! | P5 | `status-literal` | raw `-14`/`-1100` must use `minicl::status` constants |
//!
//! ### How it runs
//!
//! * `cargo run -p checker` — the CI gate; prints `file:line: [pass] msg`
//!   diagnostics and exits non-zero on any finding.
//! * `cargo run -p checker -- --write-baseline` — regenerates
//!   `crates/checker/baseline.toml` after a panic-path improvement.
//! * `cargo test -p checker` — tier-1 coverage: the lexer unit tests,
//!   fixture-driven positive/negative tests per pass, and a test that
//!   runs all five passes over the real workspace.
//!
//! See DESIGN.md §9 for the invariant rationale and the allow-marker
//! grammar (`// checker-allow(<pass-id>): <non-empty why>`).

pub mod baseline;
pub mod lexer;
pub mod passes;
pub mod workspace;

pub use baseline::{Baseline, Counts};
pub use passes::{current_baseline, run_all, Diag};
pub use workspace::{SourceFile, Workspace};

use std::path::PathBuf;

/// The workspace root, resolved from this crate's own manifest directory
/// so both `cargo run -p checker` and `cargo test` find the sources
/// regardless of the invoking directory.
pub fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/checker sits two levels below the workspace root")
        .to_path_buf()
}
