//! `clmpi-check` — a dependency-free, AST-aware invariant checker for
//! the clmpi workspace.
//!
//! ### Why this exists
//!
//! PR 2's progress engine made the runtime's correctness rest on
//! *structural* invariants — "engine.rs never blocks or advances the
//! clock", "every blocking call in the control plane carries a
//! `// blocking-api:` marker" — that were enforced by two regex greps in
//! CI. Greps match inside strings, comments, and doc text, and cannot
//! express anything deeper (attribute scope, token adjacency, counts
//! against a baseline). This crate replaces them with a hand-rolled
//! comment/string/raw-string-aware Rust [`lexer`] and a small pass
//! framework ([`passes`]) running eight checks:
//!
//! | id | pass | invariant |
//! |----|------|-----------|
//! | P1 | `non-blocking-engine` | engine.rs never blocks or advances virtual time |
//! | P2 | `blocking-marker` | clmpi blocking calls carry `// blocking-api: <why>` |
//! | P3 | `panic-ratchet` | unwrap/expect/panic!/unreachable! and allow-marker counts only move down ([`baseline`]) |
//! | P4 | `determinism` | no wall-clock, real sleeps, or unordered collections |
//! | P5 | `status-literal` | raw `-14`/`-1100` must use `minicl::status` constants |
//! | P6 | `lock-lifetime` | no blocking call / nested lock while a guard is live ([`flow`]) |
//! | P7 | `lock-order` | the cross-function lock-order graph is acyclic ([`callgraph`]) |
//! | P8 | `actor-hygiene` | SimActor/EngineOp machine bodies never OS-block or spawn threads |
//!
//! P1–P5 are token-level lints (PR 3). P6–P8 are flow-aware (PR 8),
//! motivated by the PR-7 drop deadlock: a `MutexGuard` kept live by an
//! `if let` scrutinee across a thread join. [`flow`] computes per-function
//! guard-lifetime spans on top of the lexer; [`callgraph`] lifts the
//! per-function lock sets one call level to build a workspace lock-order
//! graph.
//!
//! ### How it runs
//!
//! * `cargo run -p checker` — the CI gate; prints `file:line: [pass] msg`
//!   diagnostics and exits non-zero on any finding.
//! * `cargo run -p checker -- --json` — the same findings as a
//!   machine-readable report (emitted as a CI artifact).
//! * `cargo run -p checker -- --explain <pass>` — prints a pass's rule
//!   and rationale.
//! * `cargo run -p checker -- --write-baseline` — regenerates
//!   `crates/checker/baseline.toml` after a panic-path or allow-marker
//!   improvement.
//! * `cargo test -p checker` — tier-1 coverage: the lexer and flow unit
//!   tests, fixture-driven positive/negative tests per pass (including
//!   the PR-7 deadlock regression fixture), and a test that runs all
//!   eight passes over the real workspace.
//!
//! See DESIGN.md §9 for the invariant rationale and the allow-marker
//! grammar (`// checker-allow(<pass-id>): <non-empty why>`).

pub mod baseline;
pub mod callgraph;
pub mod flow;
pub mod lexer;
pub mod passes;
pub mod workspace;

pub use baseline::{Baseline, Counts};
pub use passes::{current_baseline, run_all, Diag, PASS_IDS};
pub use workspace::{SourceFile, Workspace};

use std::path::PathBuf;

/// The workspace root, resolved from this crate's own manifest directory
/// so both `cargo run -p checker` and `cargo test` find the sources
/// regardless of the invoking directory.
pub fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/checker sits two levels below the workspace root")
        .to_path_buf()
}
