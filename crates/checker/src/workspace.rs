//! The checker's view of the workspace: which files exist, which crate
//! each belongs to, its token stream, and which token ranges are test
//! code (`#[cfg(test)]` modules and `tests/` integration files).

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::lexer::{lex, Tok, Token};

/// The library crates whose source the passes reason about. Application
/// crates (`himeno`, `nanopowder`), the bench harness (which measures
/// wall-clock time on purpose), and the checker itself are out of scope
/// by design — the invariants belong to the runtime stack.
pub const LIBRARY_CRATES: [&str; 5] = ["simtime", "simnet", "minimpi", "minicl", "clmpi"];

/// A `fn` definition found by [`SourceFile::fn_defs`].
#[derive(Debug, Clone)]
pub struct FnDef {
    pub name: String,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Half-open token range from the body `{` to just past its `}`.
    pub body: (usize, usize),
}

/// One lexed source file.
pub struct SourceFile {
    /// Workspace-relative path with `/` separators, e.g.
    /// `crates/clmpi/src/engine.rs`.
    pub path: String,
    /// Name of the owning crate directory (`simtime`, `clmpi`, …).
    pub krate: String,
    /// True for files under the crate's `tests/` directory (integration
    /// tests — all of their code is test code).
    pub in_tests_dir: bool,
    pub tokens: Vec<Token>,
    /// Half-open token-index ranges lying inside `#[cfg(test)] mod … { }`
    /// bodies.
    test_regions: Vec<(usize, usize)>,
}

impl SourceFile {
    pub fn parse(path: String, krate: String, in_tests_dir: bool, text: &str) -> Self {
        let tokens = lex(text);
        let test_regions = find_test_regions(&tokens);
        SourceFile {
            path,
            krate,
            in_tests_dir,
            tokens,
            test_regions,
        }
    }

    /// Is the token at `idx` test code (integration-test file or inside a
    /// `#[cfg(test)]` module)?
    pub fn is_test_token(&self, idx: usize) -> bool {
        self.in_tests_dir
            || self
                .test_regions
                .iter()
                .any(|&(lo, hi)| (lo..hi).contains(&idx))
    }

    /// The token at `idx`, comments included.
    pub fn tok(&self, idx: usize) -> &Tok {
        &self.tokens[idx].tok
    }

    /// Index of the next non-comment token at or after `idx`.
    pub fn next_code(&self, idx: usize) -> Option<usize> {
        (idx..self.tokens.len()).find(|&i| !self.tokens[i].tok.is_comment())
    }

    /// Index of the previous non-comment token strictly before `idx`.
    pub fn prev_code(&self, idx: usize) -> Option<usize> {
        (0..idx).rev().find(|&i| !self.tokens[i].tok.is_comment())
    }

    /// Find a marker comment covering `line`: a `//` comment on the same
    /// line or the line immediately above whose text contains `name`.
    /// Returns the comment text after `name`, trimmed — the rationale.
    pub fn marker_on(&self, line: u32, name: &str) -> Option<String> {
        self.tokens
            .iter()
            .filter(|t| t.line + 1 == line || t.line == line)
            .find_map(|t| match &t.tok {
                Tok::LineComment(text) => text
                    .find(name)
                    .map(|at| text[at + name.len()..].trim().to_string()),
                _ => None,
            })
    }

    /// True when the token at `idx` is covered by a non-empty
    /// `// checker-allow(<pass>): <why>` marker — on the token's line,
    /// inside the token's statement, or on the line directly above the
    /// statement. An allow-marker with no justification does not count —
    /// the grammar requires saying *why*.
    pub fn allowed_at(&self, idx: usize, pass: &str) -> bool {
        let name = format!("checker-allow({pass}):");
        matches!(self.marker_in_stmt(idx, &name), Some(why) if !why.is_empty())
    }

    /// First line of the statement (or struct field, or argument)
    /// containing the token at `idx`: walk backward over code tokens to
    /// the nearest boundary (`;`, `{`, `}`, or `,`).
    pub fn stmt_first_line(&self, idx: usize) -> u32 {
        let mut first = self.tokens[idx].line;
        let mut i = idx;
        while let Some(p) = self.prev_code(i) {
            if matches!(self.tok(p), Tok::Punct(';' | '{' | '}' | ',')) {
                break;
            }
            first = self.tokens[p].line;
            i = p;
        }
        first
    }

    /// The identifier at `idx`, if its name is one of `names`.
    pub fn ident_at<'f>(&'f self, idx: usize, names: &[&str]) -> Option<&'f str> {
        match self.tok(idx) {
            Tok::Ident(s) if names.iter().any(|n| n == s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Method-call shape at `idx`: `.` `name` `(` with `name` in `names`.
    /// Returns the method name. Comments between the tokens are skipped,
    /// so a marker comment cannot break the match.
    pub fn method_call_at<'f>(&'f self, idx: usize, names: &[&str]) -> Option<&'f str> {
        let name = self.ident_at(idx, names)?;
        if !matches!(
            self.prev_code(idx).map(|i| self.tok(i)),
            Some(Tok::Punct('.'))
        ) {
            return None;
        }
        match self.next_code(idx + 1).map(|i| self.tok(i)) {
            Some(Tok::Punct('(')) => Some(name),
            _ => None,
        }
    }

    /// Call shape at `idx`: `name` `(` with `name` in `names` (any
    /// receiver, including none). A `fn name(` definition site does not
    /// match.
    pub fn any_call_at<'f>(&'f self, idx: usize, names: &[&str]) -> Option<&'f str> {
        let name = self.ident_at(idx, names)?;
        if matches!(self.prev_code(idx).map(|i| self.tok(i)), Some(Tok::Ident(k)) if k == "fn") {
            return None;
        }
        match self.next_code(idx + 1).map(|i| self.tok(i)) {
            Some(Tok::Punct('(')) => Some(name),
            _ => None,
        }
    }

    /// Index of the `}` / `)` / `]` code token matching the opener at
    /// `open`, honoring nesting of the same bracket kind. `None` when the
    /// file ends first (half-edited source must not crash the tool).
    pub fn match_delim(&self, open: usize) -> Option<usize> {
        let (o, c) = match self.tok(open) {
            Tok::Punct('{') => ('{', '}'),
            Tok::Punct('(') => ('(', ')'),
            Tok::Punct('[') => ('[', ']'),
            _ => return None,
        };
        let mut depth = 0usize;
        let mut i = open;
        loop {
            match self.tok(i) {
                Tok::Punct(p) if *p == o => depth += 1,
                Tok::Punct(p) if *p == c => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(i);
                    }
                }
                _ => {}
            }
            i = self.next_code(i + 1)?;
        }
    }

    /// Every `fn name … { body }` definition in this file, in source
    /// order, including impl/trait methods and nested fns. Bodyless trait
    /// declarations (`fn f(…);`) are skipped. `body` is the half-open
    /// token range from the opening `{` to just past its matching `}`.
    pub fn fn_defs(&self) -> Vec<FnDef> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < self.tokens.len() {
            let is_fn = matches!(self.tok(i), Tok::Ident(s) if s == "fn");
            if !is_fn {
                i += 1;
                continue;
            }
            let Some(ni) = self.next_code(i + 1) else {
                break;
            };
            let Tok::Ident(name) = self.tok(ni) else {
                i += 1; // `fn(` pointer type — not a definition
                continue;
            };
            // Find the body `{` (or `;` for a bodyless declaration): the
            // first one at paren/bracket depth 0 after the signature.
            // Generic angle brackets never contain braces, so they need
            // no tracking.
            let mut depth = 0i32;
            let mut j = ni;
            let body = loop {
                let Some(nj) = self.next_code(j + 1) else {
                    break None;
                };
                j = nj;
                match self.tok(j) {
                    Tok::Punct('(' | '[') => depth += 1,
                    Tok::Punct(')' | ']') => depth -= 1,
                    Tok::Punct(';') if depth == 0 => break None,
                    Tok::Punct('{') if depth == 0 => break Some(j),
                    _ => {}
                }
            };
            if let Some(open) = body {
                let end = self.match_delim(open).map_or(self.tokens.len(), |e| e + 1);
                out.push(FnDef {
                    name: name.clone(),
                    line: self.tokens[i].line,
                    body: (open, end),
                });
                i = open + 1; // descend: nested fns are recorded too
            } else {
                i = j + 1;
            }
        }
        out
    }

    /// Find a marker anywhere in the statement containing token `idx`:
    /// like [`SourceFile::marker_on`], but a multi-line statement (a
    /// formatted method chain, say) accepts the marker on any of its
    /// lines, and a contiguous `//` comment block directly above the
    /// statement belongs to it (so a marker may open a multi-line
    /// justification). The rationale is the comment text after `name`,
    /// trimmed.
    pub fn marker_in_stmt(&self, idx: usize, name: &str) -> Option<String> {
        let mut lo = self.stmt_first_line(idx);
        let hi = self.tokens[idx].line;
        // A comment-only line (no code tokens on it) directly above the
        // statement belongs to it; a comment trailing the *previous*
        // statement's code does not.
        let comment_only = |line: u32| {
            let mut any = false;
            for t in &self.tokens {
                if t.line == line {
                    if t.tok.is_comment() {
                        any = true;
                    } else {
                        return false;
                    }
                }
            }
            any
        };
        while lo > 1 && comment_only(lo - 1) {
            lo -= 1;
        }
        self.tokens
            .iter()
            .filter(|t| t.line >= lo && t.line <= hi)
            .find_map(|t| match &t.tok {
                Tok::LineComment(text) => text
                    .find(name)
                    .map(|at| text[at + name.len()..].trim().to_string()),
                _ => None,
            })
    }
}

/// Locate `#[cfg(test)] mod name { … }` bodies in a token stream.
///
/// This is the "AST-aware" part the old grep gates could never express:
/// the attribute grammar is matched token-wise (`#` `[` `cfg` `(` … `test`
/// … `)` `]`, comments skipped), then further attributes and doc comments
/// are allowed before `mod`, and the module body is delimited by brace
/// matching — so a `}` inside a string or comment cannot end the region.
fn find_test_regions(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let code: Vec<usize> = (0..tokens.len())
        .filter(|&i| !tokens[i].tok.is_comment())
        .collect();
    let at = |ci: usize| -> Option<&Tok> { code.get(ci).map(|&i| &tokens[i].tok) };
    let mut ci = 0;
    while ci < code.len() {
        // `#` `[` `cfg` `(` … test … `)` `]`
        if at(ci) == Some(&Tok::Punct('#'))
            && at(ci + 1) == Some(&Tok::Punct('['))
            && matches!(at(ci + 2), Some(Tok::Ident(s)) if s == "cfg")
            && at(ci + 3) == Some(&Tok::Punct('('))
        {
            // Scan to the matching `)`, remembering whether `test`
            // appears (covers `cfg(test)` and `cfg(all(test, …))`).
            let mut depth = 1usize;
            let mut has_test = false;
            let mut cj = ci + 4;
            while cj < code.len() && depth > 0 {
                match at(cj) {
                    Some(Tok::Punct('(')) => depth += 1,
                    Some(Tok::Punct(')')) => depth -= 1,
                    Some(Tok::Ident(s)) if s == "test" => has_test = true,
                    _ => {}
                }
                cj += 1;
            }
            // Expect `]`, then optional further `#[…]` attributes, then
            // `mod` ident `{`.
            if has_test && at(cj) == Some(&Tok::Punct(']')) {
                let mut ck = cj + 1;
                while at(ck) == Some(&Tok::Punct('#')) && at(ck + 1) == Some(&Tok::Punct('[')) {
                    let mut depth = 1usize;
                    ck += 2;
                    while ck < code.len() && depth > 0 {
                        match at(ck) {
                            Some(Tok::Punct('[')) => depth += 1,
                            Some(Tok::Punct(']')) => depth -= 1,
                            _ => {}
                        }
                        ck += 1;
                    }
                }
                if matches!(at(ck), Some(Tok::Ident(s)) if s == "mod") {
                    // Skip the module name, find `{`, brace-match.
                    let mut cb = ck + 1;
                    while cb < code.len() && at(cb) != Some(&Tok::Punct('{')) {
                        if at(cb) == Some(&Tok::Punct(';')) {
                            break; // `mod tests;` — body is another file
                        }
                        cb += 1;
                    }
                    if at(cb) == Some(&Tok::Punct('{')) {
                        let start = code[cb];
                        let mut depth = 0usize;
                        let mut ce = cb;
                        while ce < code.len() {
                            match at(ce) {
                                Some(Tok::Punct('{')) => depth += 1,
                                Some(Tok::Punct('}')) => {
                                    depth -= 1;
                                    if depth == 0 {
                                        break;
                                    }
                                }
                                _ => {}
                            }
                            ce += 1;
                        }
                        let end = code.get(ce).copied().unwrap_or(tokens.len());
                        regions.push((start, end + 1));
                        ci = ce;
                        continue;
                    }
                }
            }
        }
        ci += 1;
    }
    regions
}

/// The whole checked corpus plus the ratchet baseline text.
pub struct Workspace {
    pub files: Vec<SourceFile>,
    pub baseline_text: String,
}

impl Workspace {
    /// Build a synthetic workspace from `(path, text)` pairs — the
    /// fixture tests use this. Crate name and tests-dir flag are derived
    /// from the path exactly as in [`Workspace::load`].
    pub fn from_sources(sources: &[(&str, &str)], baseline_text: &str) -> Self {
        let files = sources
            .iter()
            .map(|(path, text)| {
                let parts: Vec<&str> = path.split('/').collect();
                let krate = parts.get(1).unwrap_or(&"").to_string();
                let in_tests_dir = parts.get(2) == Some(&"tests");
                SourceFile::parse(path.to_string(), krate, in_tests_dir, text)
            })
            .collect();
        Workspace {
            files,
            baseline_text: baseline_text.to_string(),
        }
    }

    /// Load every `.rs` file of the five library crates (both `src/` and
    /// `tests/`) from the workspace rooted at `root`, in deterministic
    /// path order.
    pub fn load(root: &Path) -> io::Result<Self> {
        let mut files = Vec::new();
        for krate in LIBRARY_CRATES {
            for sub in ["src", "tests"] {
                let dir = root.join("crates").join(krate).join(sub);
                if !dir.is_dir() {
                    continue;
                }
                let mut paths = Vec::new();
                collect_rs(&dir, &mut paths)?;
                paths.sort();
                for p in paths {
                    let text = fs::read_to_string(&p)?;
                    let rel = p
                        .strip_prefix(root)
                        .unwrap_or(&p)
                        .components()
                        .map(|c| c.as_os_str().to_string_lossy())
                        .collect::<Vec<_>>()
                        .join("/");
                    files.push(SourceFile::parse(
                        rel,
                        krate.to_string(),
                        sub == "tests",
                        &text,
                    ));
                }
            }
        }
        let baseline_text =
            fs::read_to_string(root.join("crates/checker/baseline.toml")).unwrap_or_default();
        Ok(Workspace {
            files,
            baseline_text,
        })
    }
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_module_bounds_are_token_accurate() {
        let src = r#"
fn live() { x.wait(); }
#[cfg(test)]
mod tests {
    // a "}" in a string must not close the region: "}"
    fn t() { let s = "}"; y.wait(); }
}
fn also_live() {}
"#;
        let f = SourceFile::parse("crates/c/src/a.rs".into(), "c".into(), false, src);
        let wait_idxs: Vec<usize> = (0..f.tokens.len())
            .filter(|&i| matches!(f.tok(i), Tok::Ident(s) if s == "wait"))
            .collect();
        assert_eq!(wait_idxs.len(), 2);
        assert!(!f.is_test_token(wait_idxs[0]), "live wait is not test code");
        assert!(f.is_test_token(wait_idxs[1]), "test wait is test code");
        let live_idx = (0..f.tokens.len())
            .find(|&i| matches!(f.tok(i), Tok::Ident(s) if s == "also_live"))
            .expect("token exists");
        assert!(!f.is_test_token(live_idx), "code after the module is live");
    }

    #[test]
    fn cfg_all_test_and_stacked_attributes() {
        let src = r#"
#[cfg(all(test, feature = "x"))]
#[allow(dead_code)]
mod tests { fn t() { z.recv(); } }
"#;
        let f = SourceFile::parse("crates/c/src/a.rs".into(), "c".into(), false, src);
        let idx = (0..f.tokens.len())
            .find(|&i| matches!(f.tok(i), Tok::Ident(s) if s == "recv"))
            .expect("token exists");
        assert!(f.is_test_token(idx));
    }

    #[test]
    fn markers_same_line_and_line_above() {
        let src = "a.wait(); // blocking-api: reason one\n// blocking-api: reason two\nb.wait();\nc.wait();\n";
        let f = SourceFile::parse("crates/c/src/a.rs".into(), "c".into(), false, src);
        assert_eq!(
            f.marker_on(1, "blocking-api:").as_deref(),
            Some("reason one")
        );
        assert_eq!(
            f.marker_on(3, "blocking-api:").as_deref(),
            Some("reason two")
        );
        assert_eq!(f.marker_on(4, "blocking-api:"), None);
    }

    #[test]
    fn allow_marker_requires_a_justification() {
        let src = "use X; // checker-allow(determinism): keyed access only\nuse Y; // checker-allow(determinism):\n";
        let f = SourceFile::parse("crates/c/src/a.rs".into(), "c".into(), false, src);
        let idx_of = |name: &str| {
            (0..f.tokens.len())
                .find(|&i| matches!(f.tok(i), Tok::Ident(s) if s == name))
                .expect("token exists")
        };
        assert!(f.allowed_at(idx_of("X"), "determinism"));
        assert!(
            !f.allowed_at(idx_of("Y"), "determinism"),
            "empty rationale rejected"
        );
    }

    #[test]
    fn allow_marker_covers_a_multiline_statement() {
        let src = "fn f() {\n    self.shared\n        // checker-allow(demo): host-side wait\n        .wait_labeled(a);\n}\n";
        let f = SourceFile::parse("crates/c/src/a.rs".into(), "c".into(), false, src);
        let idx = (0..f.tokens.len())
            .find(|&i| matches!(f.tok(i), Tok::Ident(s) if s == "wait_labeled"))
            .expect("token exists");
        assert!(f.allowed_at(idx, "demo"), "marker inside the chain counts");
        assert_eq!(f.stmt_first_line(idx), 2, "statement starts at `self`");
    }
}
