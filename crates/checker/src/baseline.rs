//! The panic-path ratchet baseline: a committed per-crate count of
//! `unwrap(` / `expect(` / `panic!` occurrences, stored in
//! `crates/checker/baseline.toml` and parsed by this hand-rolled reader
//! (the workspace has zero external dependencies, so no `toml` crate).
//!
//! Grammar — a strict subset of TOML, enough for the ratchet:
//!
//! ```toml
//! # comment
//! [crate-name]
//! unwrap = 12
//! expect = 3
//! panic = 1
//! unreachable = 0
//!
//! [allow]
//! lock-lifetime = 2
//! ```
//!
//! The `[allow]` section pins the count of `// checker-allow(<pass>):`
//! markers per pass, so a new suppression is as visible in review as a
//! new panic path.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Per-crate counts of the four panic-path forms.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Counts {
    pub unwrap: usize,
    pub expect: usize,
    pub panic: usize,
    pub unreachable: usize,
}

/// Baseline table, ordered by crate name so serialization is canonical.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct Baseline {
    pub crates: BTreeMap<String, Counts>,
    /// `checker-allow(<pass>)` marker counts, keyed by pass id.
    pub allows: BTreeMap<String, usize>,
}

impl Baseline {
    /// Parse `baseline.toml` text. Returns `Err(line-number, message)` on
    /// anything outside the grammar — a malformed baseline must fail the
    /// build loudly, not silently reset the ratchet to zero.
    pub fn parse(text: &str) -> Result<Baseline, (u32, String)> {
        let mut out = Baseline::default();
        let mut current: Option<String> = None;
        for (i, raw) in text.lines().enumerate() {
            let lineno = i as u32 + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
                let name = name.trim().to_string();
                if name != "allow" {
                    out.crates.entry(name.clone()).or_default();
                }
                current = Some(name);
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err((lineno, format!("expected `key = value`, got `{line}`")));
            };
            let Some(section) = &current else {
                return Err((lineno, "key outside any [crate] section".to_string()));
            };
            let n: usize = value
                .trim()
                .parse()
                .map_err(|_| (lineno, format!("`{}` is not a count", value.trim())))?;
            if section == "allow" {
                out.allows.insert(key.trim().to_string(), n);
                continue;
            }
            let counts = out.crates.get_mut(section).expect("section inserted above");
            match key.trim() {
                "unwrap" => counts.unwrap = n,
                "expect" => counts.expect = n,
                "panic" => counts.panic = n,
                "unreachable" => counts.unreachable = n,
                other => return Err((lineno, format!("unknown key `{other}`"))),
            }
        }
        Ok(out)
    }

    /// Canonical serialization, suitable for committing.
    pub fn serialize(&self) -> String {
        let mut s = String::from(
            "# Panic-path and allow-marker ratchet baseline (checker pass 3).\n\
             # Counts of unwrap( / expect( / panic! / unreachable! tokens per library\n\
             # crate, src/ and tests/ included, comments and strings excluded; plus\n\
             # checker-allow(<pass>) marker counts in [allow].\n\
             # New code may only move these numbers DOWN. After an improvement,\n\
             # regenerate with: cargo run -p checker -- --write-baseline\n",
        );
        for (krate, c) in &self.crates {
            let _ = write!(
                s,
                "\n[{krate}]\nunwrap = {}\nexpect = {}\npanic = {}\nunreachable = {}\n",
                c.unwrap, c.expect, c.panic, c.unreachable
            );
        }
        if !self.allows.is_empty() {
            s.push_str("\n[allow]\n");
            for (pass, n) in &self.allows {
                let _ = writeln!(s, "{pass} = {n}");
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        let b = Baseline::parse(
            "# hi\n[clmpi]\nunwrap = 3\nexpect=2\nunreachable = 4\n\n[simtime]\npanic = 1\n\
             \n[allow]\nlock-lifetime = 2\ndeterminism = 1\n",
        )
        .expect("valid baseline parses");
        assert_eq!(b.crates["clmpi"].unwrap, 3);
        assert_eq!(b.crates["clmpi"].expect, 2);
        assert_eq!(b.crates["clmpi"].unreachable, 4);
        assert_eq!(b.crates["simtime"].panic, 1);
        assert_eq!(b.allows["lock-lifetime"], 2);
        assert_eq!(b.allows["determinism"], 1);
        assert!(
            !b.crates.contains_key("allow"),
            "[allow] is not a crate section"
        );
        assert_eq!(
            Baseline::parse(&b.serialize()).expect("canonical form reparses"),
            b
        );
    }

    #[test]
    fn malformed_baseline_is_an_error_not_zero() {
        assert!(Baseline::parse("unwrap = 3").is_err(), "key before section");
        assert!(Baseline::parse("[c]\nunwrap three").is_err(), "no `=`");
        assert!(
            Baseline::parse("[c]\nunwrap = many").is_err(),
            "not a count"
        );
        assert!(Baseline::parse("[c]\nunknown = 3").is_err(), "unknown key");
    }
}
