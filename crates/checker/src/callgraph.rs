//! Cross-function lock-acquisition summaries and the lock-order graph.
//!
//! The `lock-lifetime` pass ([`crate::flow`]) sees one function body at a
//! time, so a guard held across a *call* into another function that takes
//! a second lock is invisible to it. This module closes that gap one
//! level deep, which is as far as a name-based analysis stays honest:
//!
//! 1. Every `fn` in the library crates gets a [`FnSummary`]: the named
//!    locks it acquires lexically (`state`, `shard`, `defer`, …,
//!    qualified by crate), and the workspace functions it calls directly.
//! 2. For each guard span, every lock acquired — lexically or via a
//!    direct callee's summary — while the guard is live becomes an edge
//!    `held → acquired` in the **lock-order graph**.
//! 3. A cycle in that graph is a deadlock candidate: two threads taking
//!    the same pair of locks in opposite orders. Each strongly-connected
//!    component with a cycle is reported once, with example sites.
//!
//! Names, not instances: two `Mutex` fields both called `state` in
//! different crates are distinguished (`simtime:state` vs
//! `clmpi:state`); two instances of the *same* field are not — a
//! self-edge (`state → state`) is therefore only reported when it is
//! lexically certain (a nested `.lock()` on the same name inside one
//! function), never via call propagation, where "the other instance's
//! lock" is the common benign case.
//!
//! `try_lock` never appears on the *acquired* side of an edge: it cannot
//! wait, so it cannot complete a deadlock cycle — it is exactly the
//! cycle-breaking primitive (the clock's deadlock reporter uses it to
//! peek at shard state from inside the state lock). It still counts on
//! the *held* side.

use std::collections::{BTreeMap, BTreeSet};

use crate::flow::{call_takes_name, guard_spans};
use crate::workspace::{SourceFile, Workspace};

/// What one function does to locks, lexically.
#[derive(Debug, Default, Clone)]
pub struct FnSummary {
    pub krate: String,
    pub file: String,
    pub name: String,
    pub line: u32,
    /// Qualified names of locks this function acquires *blockingly*
    /// (`.lock()`, not `.try_lock()`), with a representative line.
    pub locks: BTreeMap<String, u32>,
    /// Names of functions called directly (resolved against the
    /// workspace symbol table later; std/method noise drops out there).
    pub calls: BTreeSet<String>,
}

/// One `held → acquired` edge with provenance.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Edge {
    pub held: String,
    pub acquired: String,
    pub file: String,
    pub line: u32,
    /// Empty for a lexical nested lock; the callee name when the
    /// acquisition came from a one-level call summary.
    pub via: String,
}

/// Qualify a lock name by its owning crate: `state` → `simtime:state`.
fn qualify(krate: &str, lock: &str) -> String {
    format!("{krate}:{lock}")
}

/// Build per-function summaries for every non-test `fn` in the corpus.
pub fn summaries(ws: &Workspace) -> Vec<FnSummary> {
    let mut out = Vec::new();
    for f in ws.files.iter().filter(|f| !f.in_tests_dir) {
        for def in f.fn_defs() {
            if f.is_test_token(def.body.0) {
                continue;
            }
            let mut s = FnSummary {
                krate: f.krate.clone(),
                file: f.path.clone(),
                name: def.name.clone(),
                line: def.line,
                ..FnSummary::default()
            };
            for g in guard_spans(f, def.body) {
                if !g.non_blocking {
                    s.locks
                        .entry(qualify(&f.krate, &g.lock_name))
                        .or_insert(g.line);
                }
            }
            for idx in def.body.0..def.body.1 {
                if let Some(name) = call_name(f, idx) {
                    s.calls.insert(name.to_string());
                }
            }
            out.push(s);
        }
    }
    out
}

/// The callee name when `idx` is a call site (`name(` or `.name(`),
/// excluding definitions (`fn name(`) and macro calls (`name!(`).
fn call_name(f: &SourceFile, idx: usize) -> Option<&str> {
    use crate::lexer::Tok;
    let Tok::Ident(name) = f.tok(idx) else {
        return None;
    };
    if matches!(f.prev_code(idx).map(|i| f.tok(i)), Some(Tok::Ident(k)) if k == "fn") {
        return None;
    }
    match f.next_code(idx + 1).map(|i| f.tok(i)) {
        Some(Tok::Punct('(')) => Some(name.as_str()),
        _ => None,
    }
}

/// Collect every `held → acquired` edge in the workspace. Edges whose
/// acquisition site carries `// checker-allow(lock-order): <why>` (on
/// the nested lock / call token, or on the guard's own `.lock()` line)
/// are dropped before cycle detection.
pub fn edges(ws: &Workspace) -> Vec<Edge> {
    const PASS: &str = "lock-order";
    let sums = summaries(ws);
    // Symbol table: bare fn name → union of the summaries sharing it.
    // A call site only names the method, so same-named fns all apply —
    // conservative, and exactly why propagation stops at one level.
    let mut by_name: BTreeMap<&str, Vec<&FnSummary>> = BTreeMap::new();
    for s in &sums {
        by_name.entry(s.name.as_str()).or_default().push(s);
    }
    let mut out = Vec::new();
    for f in ws.files.iter().filter(|f| !f.in_tests_dir) {
        for def in f.fn_defs() {
            if f.is_test_token(def.body.0) {
                continue;
            }
            for g in guard_spans(f, def.body) {
                let held = qualify(&f.krate, &g.lock_name);
                let span = (g.lock_idx + 1)..g.end.min(f.tokens.len());
                for idx in span {
                    if f.allowed_at(idx, PASS) || f.allowed_at(g.lock_idx, PASS) {
                        continue;
                    }
                    let line = f.tokens[idx].line;
                    // Lexical nested blocking lock inside the span.
                    if idx != g.lock_idx && f.method_call_at(idx, &["lock"]).is_some() {
                        out.push(Edge {
                            held: held.clone(),
                            acquired: qualify(&f.krate, &crate::flow::lock_receiver_name(f, idx)),
                            file: f.path.clone(),
                            line,
                            via: String::new(),
                        });
                        continue;
                    }
                    // One-level propagation through a direct call. A call
                    // that receives the guard itself (condvar handoff)
                    // releases the lock while inside — no edge.
                    let Some(callee) = call_name(f, idx) else {
                        continue;
                    };
                    if call_takes_name(f, idx, g.name.as_deref()) {
                        continue;
                    }
                    // A call sharing the enclosing function's name is —
                    // name-blindly — a union with *this* function, whose
                    // own locks would echo back as phantom edges (e.g.
                    // `resolve` delegating to `cfg.resolve(…)`). Skip it;
                    // true one-level recursion adds nothing new anyway.
                    if callee == def.name {
                        continue;
                    }
                    for target in by_name.get(callee).map_or(&[][..], |v| &v[..]) {
                        for acquired in target.locks.keys() {
                            // Same-name-via-call is the benign
                            // other-instance case; see module docs.
                            if *acquired == held {
                                continue;
                            }
                            out.push(Edge {
                                held: held.clone(),
                                acquired: acquired.clone(),
                                file: f.path.clone(),
                                line,
                                via: callee.to_string(),
                            });
                        }
                    }
                }
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

/// One reported cycle: the locks involved (sorted), plus one example
/// edge per step for the diagnostic.
#[derive(Debug, Clone)]
pub struct Cycle {
    pub locks: Vec<String>,
    pub example: Vec<Edge>,
}

/// Find cycles in the lock-order graph: strongly-connected components
/// with more than one node, plus single nodes with a self-edge.
pub fn cycles(edges: &[Edge]) -> Vec<Cycle> {
    let mut nodes: BTreeSet<&str> = BTreeSet::new();
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    let mut radj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in edges {
        nodes.insert(&e.held);
        nodes.insert(&e.acquired);
        adj.entry(&e.held).or_default().insert(&e.acquired);
        radj.entry(&e.acquired).or_default().insert(&e.held);
    }
    // Kosaraju: forward DFS finish order, then reverse-graph DFS.
    let mut order: Vec<&str> = Vec::new();
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    for &start in &nodes {
        if seen.contains(start) {
            continue;
        }
        // Iterative post-order.
        let mut stack: Vec<(&str, bool)> = vec![(start, false)];
        while let Some((n, done)) = stack.pop() {
            if done {
                order.push(n);
                continue;
            }
            if !seen.insert(n) {
                continue;
            }
            stack.push((n, true));
            for &m in adj.get(n).into_iter().flatten() {
                if !seen.contains(m) {
                    stack.push((m, false));
                }
            }
        }
    }
    let mut comp: BTreeMap<&str, usize> = BTreeMap::new();
    let mut ncomp = 0usize;
    for &start in order.iter().rev() {
        if comp.contains_key(start) {
            continue;
        }
        let mut stack = vec![start];
        while let Some(n) = stack.pop() {
            if comp.contains_key(n) {
                continue;
            }
            comp.insert(n, ncomp);
            for &m in radj.get(n).into_iter().flatten() {
                if !comp.contains_key(m) {
                    stack.push(m);
                }
            }
        }
        ncomp += 1;
    }
    let mut groups: BTreeMap<usize, Vec<&str>> = BTreeMap::new();
    for (&n, &c) in &comp {
        groups.entry(c).or_default().push(n);
    }
    let mut out = Vec::new();
    for (_, members) in groups {
        let cyclic = members.len() > 1
            || members
                .iter()
                .any(|&n| adj.get(n).is_some_and(|s| s.contains(n)));
        if !cyclic {
            continue;
        }
        let set: BTreeSet<&str> = members.iter().copied().collect();
        let example: Vec<Edge> = edges
            .iter()
            .filter(|e| set.contains(e.held.as_str()) && set.contains(e.acquired.as_str()))
            .cloned()
            .collect();
        out.push(Cycle {
            locks: members.iter().map(|s| s.to_string()).collect(),
            example,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(sources: &[(&str, &str)]) -> Workspace {
        Workspace::from_sources(sources, "")
    }

    #[test]
    fn lexical_nested_lock_makes_an_edge() {
        let w = ws(&[(
            "crates/simtime/src/a.rs",
            "fn f(&self) {\n    let g = self.alpha.lock();\n    self.beta.lock().push(1);\n}\n",
        )]);
        let es = edges(&w);
        assert_eq!(es.len(), 1);
        assert_eq!(es[0].held, "simtime:alpha");
        assert_eq!(es[0].acquired, "simtime:beta");
        assert!(es[0].via.is_empty());
    }

    #[test]
    fn call_propagation_is_one_level() {
        let w = ws(&[(
            "crates/simtime/src/a.rs",
            "fn helper(&self) {\n    self.beta.lock().push(1);\n}\n\
             fn deeper(&self) {\n    self.gamma.lock().push(1);\n}\n\
             fn indirect(&self) {\n    self.deeper();\n}\n\
             fn f(&self) {\n    let g = self.alpha.lock();\n    self.helper();\n    self.indirect();\n}\n",
        )]);
        let es = edges(&w);
        let pairs: Vec<(String, String)> = es
            .iter()
            .map(|e| (e.held.clone(), e.acquired.clone()))
            .collect();
        assert!(pairs.contains(&("simtime:alpha".into(), "simtime:beta".into())));
        assert!(
            !pairs.iter().any(|(_, a)| a == "simtime:gamma"),
            "two-level propagation must not happen: {pairs:?}"
        );
    }

    #[test]
    fn opposite_orders_form_a_reported_cycle() {
        let w = ws(&[(
            "crates/simtime/src/a.rs",
            "fn f(&self) {\n    let g = self.alpha.lock();\n    self.beta.lock().push(1);\n}\n\
             fn h(&self) {\n    let g = self.beta.lock();\n    self.alpha.lock().push(1);\n}\n",
        )]);
        let cs = cycles(&edges(&w));
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].locks, vec!["simtime:alpha", "simtime:beta"]);
        assert_eq!(cs[0].example.len(), 2);
    }

    #[test]
    fn try_lock_breaks_the_cycle() {
        let w = ws(&[(
            "crates/simtime/src/a.rs",
            "fn f(&self) {\n    let g = self.alpha.lock();\n    self.beta.lock().push(1);\n}\n\
             fn h(&self) {\n    let g = self.beta.lock();\n    if let Some(a) = self.alpha.try_lock() {\n        use_it(a);\n    }\n}\n",
        )]);
        assert!(
            cycles(&edges(&w)).is_empty(),
            "try_lock cannot complete a deadlock cycle"
        );
    }

    #[test]
    fn allow_marker_drops_the_edge() {
        let w = ws(&[(
            "crates/simtime/src/a.rs",
            "fn f(&self) {\n    let g = self.alpha.lock();\n    // checker-allow(lock-order): beta is leaf-ordered after alpha by construction\n    self.beta.lock().push(1);\n}\n\
             fn h(&self) {\n    let g = self.beta.lock();\n    self.alpha.lock().push(1);\n}\n",
        )]);
        assert!(cycles(&edges(&w)).is_empty());
    }

    #[test]
    fn condvar_handoff_creates_no_call_edge() {
        let w = ws(&[(
            "crates/simtime/src/a.rs",
            "fn waiter(&self) {\n    let mut st = self.state.lock();\n    st = self.cv_wait(st);\n}\n\
             fn cv_wait(&self, st: G) -> G {\n    self.other.lock().push(1);\n    st\n}\n",
        )]);
        // `cv_wait` receives the guard `st`, so no `state → other` edge.
        assert!(edges(&w)
            .iter()
            .all(|e| !(e.held == "simtime:state" && e.acquired == "simtime:other")));
    }

    #[test]
    fn same_named_delegation_does_not_echo_own_locks() {
        // `resolve` holding a guard while calling `cfg.resolve(…)` must
        // not union with itself and report its own other locks as edges.
        let w = ws(&[(
            "crates/clmpi/src/a.rs",
            "fn resolve(&self) -> u32 {\n    let a = self.alpha.lock();\n    let b = self.beta.lock();\n    self.cfg.resolve(1)\n}\n",
        )]);
        assert!(
            edges(&w).iter().all(|e| e.via.is_empty()),
            "no call-propagated edges through the fn's own name"
        );
    }

    #[test]
    fn same_name_via_call_is_not_a_self_edge() {
        let w = ws(&[(
            "crates/simtime/src/a.rs",
            "fn now(&self) -> u64 {\n    self.state.lock().now\n}\n\
             fn f(&self, peer: &Self) {\n    let g = self.state.lock();\n    peer.now();\n}\n",
        )]);
        assert!(
            cycles(&edges(&w)).is_empty(),
            "other-instance state lock must not self-cycle"
        );
    }
}
