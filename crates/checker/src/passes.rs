//! The eight invariant passes.
//!
//! Each pass walks the lexed token streams of the library crates and
//! reports [`Diag`]s. All passes share two conventions:
//!
//! * **Comments and string literals never match.** The lexer classifies
//!   them; passes look only at code tokens. This is what the old CI grep
//!   gates could not do.
//! * **Line-level allow markers.** A finding on line *L* is suppressed by
//!   `// checker-allow(<pass-id>): <non-empty why>` on line *L* or
//!   *L − 1* (or anywhere in the finding's multi-line statement). The
//!   justification is mandatory; an empty one is itself a violation of
//!   the marker grammar and does not suppress. Marker *counts* are
//!   themselves ratcheted in `baseline.toml` (`[allow]` section), so a
//!   new annotation is a reviewed event, not a silent escape.
//!
//! Passes P1–P5 are token-level lints (PR 3). P6–P8 are flow-aware: they
//! reason over guard lifetimes ([`crate::flow`]) and one-level call
//! summaries ([`crate::callgraph`]).

use crate::baseline::{Baseline, Counts};
use crate::callgraph;
use crate::flow::{call_takes_name, guard_spans, GuardKind};
use crate::lexer::Tok;
use crate::workspace::{SourceFile, Workspace, LIBRARY_CRATES};

/// Every pass id, in run order. The allow-marker ratchet and
/// `--explain` both key off this list.
pub const PASS_IDS: [&str; 8] = [
    "non-blocking-engine",
    "blocking-marker",
    "panic-ratchet",
    "determinism",
    "status-literal",
    "lock-lifetime",
    "lock-order",
    "actor-hygiene",
];

/// One reported violation, printed as `file:line: [pass] message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diag {
    pub pass: &'static str,
    pub file: String,
    pub line: u32,
    pub msg: String,
}

impl std::fmt::Display for Diag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.pass, self.msg
        )
    }
}

/// Run every pass; diagnostics come back grouped by pass, then file,
/// then line — the scan order is deterministic.
pub fn run_all(ws: &Workspace) -> Vec<Diag> {
    let mut out = Vec::new();
    pass_nonblocking_engine(ws, &mut out);
    pass_blocking_markers(ws, &mut out);
    pass_panic_ratchet(ws, &mut out);
    pass_determinism(ws, &mut out);
    pass_status_literals(ws, &mut out);
    pass_lock_lifetime(ws, &mut out);
    pass_lock_order(ws, &mut out);
    pass_actor_hygiene(ws, &mut out);
    out
}

// ----------------------------------------------------------------------
// Pass 1 — non-blocking engine
// ----------------------------------------------------------------------

/// DESIGN.md §8c invariant 1: `crates/clmpi/src/engine.rs` is the data
/// plane; it must never block the engine thread (`.wait(…)`, `.recv(…)`,
/// `.wait_labeled(…)`, `.wait_result(…)`) and must never advance virtual
/// time itself (`advance_until(…)`, `advance_ns(…)`). Machines *park*
/// with a wake hint instead. Test modules inside engine.rs are exempt —
/// tests sit on the control-plane side of the line.
pub fn pass_nonblocking_engine(ws: &Workspace, out: &mut Vec<Diag>) {
    const PASS: &str = "non-blocking-engine";
    const BLOCKING: &[&str] = &["wait", "recv", "wait_labeled", "wait_result"];
    const CLOCK: &[&str] = &["advance_until", "advance_ns"];
    for f in ws
        .files
        .iter()
        .filter(|f| f.path.ends_with("clmpi/src/engine.rs"))
    {
        for idx in 0..f.tokens.len() {
            if f.is_test_token(idx) {
                continue;
            }
            let line = f.tokens[idx].line;
            let hit = f
                .method_call_at(idx, BLOCKING)
                .map(|n| format!("blocking call `.{n}(`"))
                .or_else(|| {
                    f.any_call_at(idx, CLOCK)
                        .map(|n| format!("virtual-time advance `{n}(`"))
                });
            if let Some(what) = hit {
                if f.allowed_at(idx, PASS) {
                    continue;
                }
                out.push(Diag {
                    pass: PASS,
                    file: f.path.clone(),
                    line,
                    msg: format!(
                        "{what} in the progress engine — machines must park with a \
                         wake hint, never block or advance the clock (DESIGN.md §9 P1)"
                    ),
                });
            }
        }
    }
}

// ----------------------------------------------------------------------
// Pass 2 — blocking-api markers
// ----------------------------------------------------------------------

/// DESIGN.md §8c invariant 2: the clmpi control plane may block only
/// where an MPI/OpenCL semantic requires it, and every such call site
/// carries a `// blocking-api: <why>` marker with a non-empty rationale —
/// on the call's line, anywhere in the call's (possibly multi-line)
/// statement, or the line directly above the statement. Applies to all
/// of `crates/clmpi/src` except engine.rs (pass 1 forbids blocking there
/// outright); test code blocks freely.
pub fn pass_blocking_markers(ws: &Workspace, out: &mut Vec<Diag>) {
    const PASS: &str = "blocking-marker";
    const BLOCKING: &[&str] = &["wait", "recv", "wait_labeled", "wait_result"];
    for f in ws.files.iter().filter(|f| {
        f.krate == "clmpi"
            && !f.in_tests_dir
            && f.path.contains("/src/")
            && !f.path.ends_with("engine.rs")
    }) {
        for idx in 0..f.tokens.len() {
            if f.is_test_token(idx) {
                continue;
            }
            let Some(name) = f.method_call_at(idx, BLOCKING) else {
                continue;
            };
            let line = f.tokens[idx].line;
            if f.allowed_at(idx, PASS) {
                continue;
            }
            match f.marker_in_stmt(idx, "blocking-api:") {
                Some(why) if !why.is_empty() => {}
                Some(_) => out.push(Diag {
                    pass: PASS,
                    file: f.path.clone(),
                    line,
                    msg: format!(
                        "blocking call `.{name}(` has a `// blocking-api:` marker with an \
                         empty rationale — say why this must block (DESIGN.md §9 P2)"
                    ),
                }),
                None => out.push(Diag {
                    pass: PASS,
                    file: f.path.clone(),
                    line,
                    msg: format!(
                        "blocking call `.{name}(` without a `// blocking-api: <why>` marker \
                         on this line or the line above (DESIGN.md §9 P2)"
                    ),
                }),
            }
        }
    }
}

// ----------------------------------------------------------------------
// Pass 3 — panic-path and allow-marker ratchet
// ----------------------------------------------------------------------

/// Count `unwrap(` / `expect(` / `panic!` / `unreachable!` code tokens
/// per library crate — and `// checker-allow(<pass>)` markers per pass —
/// and compare against the committed `crates/checker/baseline.toml`.
/// Counts may only move down; an improvement must be locked in by
/// regenerating the baseline, and a regression is an error naming the
/// crate (or pass) and the delta.
pub fn pass_panic_ratchet(ws: &Workspace, out: &mut Vec<Diag>) {
    const PASS: &str = "panic-ratchet";
    let baseline = match Baseline::parse(&ws.baseline_text) {
        Ok(b) => b,
        Err((line, msg)) => {
            out.push(Diag {
                pass: PASS,
                file: "crates/checker/baseline.toml".into(),
                line,
                msg,
            });
            return;
        }
    };
    for krate in LIBRARY_CRATES {
        let actual = count_panic_paths(ws, krate);
        let base = baseline.crates.get(krate).copied().unwrap_or_default();
        for (kind, got, want) in [
            ("unwrap(", actual.unwrap, base.unwrap),
            ("expect(", actual.expect, base.expect),
            ("panic!", actual.panic, base.panic),
            ("unreachable!", actual.unreachable, base.unreachable),
        ] {
            if got > want {
                out.push(Diag {
                    pass: PASS,
                    file: format!("crates/{krate}"),
                    line: 0,
                    msg: format!(
                        "`{kind}` count ratcheted UP: {got} > baseline {want} — new code \
                         must not add panic paths; return a Result or justify with \
                         context via expect() *and* lower another site (DESIGN.md §9 P3)"
                    ),
                });
            } else if got < want {
                out.push(Diag {
                    pass: PASS,
                    file: format!("crates/{krate}"),
                    line: 0,
                    msg: format!(
                        "`{kind}` count improved: {got} < baseline {want} — lock it in \
                         with `cargo run -p checker -- --write-baseline` and commit \
                         crates/checker/baseline.toml"
                    ),
                });
            }
        }
    }
    for pass in PASS_IDS {
        let got = count_allow_markers(ws, pass);
        let want = baseline.allows.get(pass).copied().unwrap_or(0);
        if got > want {
            out.push(Diag {
                pass: PASS,
                file: "crates/checker/baseline.toml".into(),
                line: 0,
                msg: format!(
                    "`checker-allow({pass})` marker count ratcheted UP: {got} > baseline \
                     {want} — a new suppression is a reviewed event; fix the site or \
                     re-baseline deliberately with --write-baseline (DESIGN.md §9 P3)"
                ),
            });
        } else if got < want {
            out.push(Diag {
                pass: PASS,
                file: "crates/checker/baseline.toml".into(),
                line: 0,
                msg: format!(
                    "`checker-allow({pass})` marker count improved: {got} < baseline \
                     {want} — lock it in with `cargo run -p checker -- --write-baseline`"
                ),
            });
        }
    }
}

/// The counting half of pass 3, also used by `--write-baseline`.
pub fn count_panic_paths(ws: &Workspace, krate: &str) -> Counts {
    let mut c = Counts::default();
    for f in ws.files.iter().filter(|f| f.krate == krate) {
        for idx in 0..f.tokens.len() {
            if f.any_call_at(idx, &["unwrap"]).is_some() {
                c.unwrap += 1;
            } else if f.any_call_at(idx, &["expect"]).is_some() {
                c.expect += 1;
            } else if f.ident_at(idx, &["panic", "unreachable"]).is_some()
                && matches!(
                    f.next_code(idx + 1).map(|i| f.tok(i)),
                    Some(Tok::Punct('!'))
                )
            {
                if matches!(f.tok(idx), Tok::Ident(s) if s == "panic") {
                    c.panic += 1;
                } else {
                    c.unreachable += 1;
                }
            }
        }
    }
    c
}

/// Count `// checker-allow(<pass>):` markers across the non-test library
/// sources — the other half of the ratchet.
pub fn count_allow_markers(ws: &Workspace, pass: &str) -> usize {
    let needle = format!("checker-allow({pass}):");
    let mut n = 0;
    for f in ws.files.iter().filter(|f| !f.in_tests_dir) {
        for t in &f.tokens {
            if let Tok::LineComment(text) = &t.tok {
                n += text.matches(&needle).count();
            }
        }
    }
    n
}

/// Compute the full baseline for the current tree.
pub fn current_baseline(ws: &Workspace) -> Baseline {
    let mut b = Baseline::default();
    for krate in LIBRARY_CRATES {
        b.crates
            .insert(krate.to_string(), count_panic_paths(ws, krate));
    }
    for pass in PASS_IDS {
        let n = count_allow_markers(ws, pass);
        if n > 0 {
            b.allows.insert(pass.to_string(), n);
        }
    }
    b
}

// ----------------------------------------------------------------------
// Pass 4 — determinism lint
// ----------------------------------------------------------------------

/// The five library crates are deterministic by contract: identical
/// seeds replay identical virtual-time traces. Wall-clock types
/// (`std::time::Instant`, `SystemTime`), real sleeps (`thread::sleep`),
/// and iteration-order-unstable collections (`HashMap`, `HashSet`) all
/// break that contract. Since iteration-sensitivity cannot be decided
/// lexically, *every* unordered-collection use must either migrate to
/// `BTreeMap`/`BTreeSet` or carry a
/// `// checker-allow(determinism): <why>` marker proving keyed-only
/// access. Test code is exempt (it asserts on outcomes, not traces).
pub fn pass_determinism(ws: &Workspace, out: &mut Vec<Diag>) {
    const PASS: &str = "determinism";
    for f in ws.files.iter().filter(|f| !f.in_tests_dir) {
        for idx in 0..f.tokens.len() {
            if f.is_test_token(idx) {
                continue;
            }
            let line = f.tokens[idx].line;
            let finding = if let Some(n) = f.ident_at(idx, &["Instant", "SystemTime"]) {
                Some(format!(
                    "wall-clock type `{n}` — deterministic crates tell time only \
                     through the simtime clock"
                ))
            } else if f.ident_at(idx, &["sleep"]).is_some() && is_thread_path(f, idx) {
                Some("real `thread::sleep` — park on the simtime clock instead".to_string())
            } else {
                f.ident_at(idx, &["HashMap", "HashSet"]).map(|n| {
                    format!(
                        "unordered collection `{n}` — use BTreeMap/BTreeSet or justify \
                         keyed-only access with `// checker-allow(determinism): <why>`"
                    )
                })
            };
            if let Some(msg) = finding {
                if f.allowed_at(idx, PASS) {
                    continue;
                }
                out.push(Diag {
                    pass: PASS,
                    file: f.path.clone(),
                    line,
                    msg: format!("{msg} (DESIGN.md §9 P4)"),
                });
            }
        }
    }
}

/// Is the identifier at `idx` path-qualified by `thread::`?
fn is_thread_path(f: &SourceFile, idx: usize) -> bool {
    let Some(c1) = f.prev_code(idx) else {
        return false;
    };
    let Some(c2) = f.prev_code(c1) else {
        return false;
    };
    let Some(c3) = f.prev_code(c2) else {
        return false;
    };
    matches!(f.tok(c1), Tok::Punct(':'))
        && matches!(f.tok(c2), Tok::Punct(':'))
        && matches!(f.tok(c3), Tok::Ident(s) if s == "thread")
}

// ----------------------------------------------------------------------
// Pass 5 — status-literal hygiene
// ----------------------------------------------------------------------

/// The negative CL status codes live in `minicl::status`; restating them
/// as raw literals (`-14`, `-1100`) reintroduces the drift that module
/// was created to end. Outside `crates/minicl/src/status.rs`, any
/// negated occurrence of a known status value must use the named
/// constant. String literals and comments (e.g. an assertion message
/// quoting "-1100") are naturally exempt via the lexer.
pub fn pass_status_literals(ws: &Workspace, out: &mut Vec<Diag>) {
    const PASS: &str = "status-literal";
    const STATUS: &[(u128, &str)] = &[
        (
            14,
            "minicl::status::EXEC_STATUS_ERROR_FOR_EVENTS_IN_WAIT_LIST",
        ),
        (1100, "minicl::status::CL_MPI_TRANSFER_ERROR"),
    ];
    for f in ws
        .files
        .iter()
        .filter(|f| !f.path.ends_with("minicl/src/status.rs"))
    {
        for idx in 0..f.tokens.len() {
            let Tok::Int { text, value } = f.tok(idx) else {
                continue;
            };
            let Some(&(_, constant)) = STATUS.iter().find(|&&(v, _)| Some(v) == *value) else {
                continue;
            };
            if !matches!(f.prev_code(idx).map(|i| f.tok(i)), Some(Tok::Punct('-'))) {
                continue;
            }
            let line = f.tokens[idx].line;
            if f.allowed_at(idx, PASS) {
                continue;
            }
            out.push(Diag {
                pass: PASS,
                file: f.path.clone(),
                line,
                msg: format!(
                    "raw status literal `-{text}` — name it: use {constant} \
                     (DESIGN.md §9 P5)"
                ),
            });
        }
    }
}

// ----------------------------------------------------------------------
// Pass 6 — lock-lifetime (flow-aware)
// ----------------------------------------------------------------------

/// Calls that block the OS thread or advance virtual time — either way,
/// running one with a `MutexGuard` live is how PR 7's drop deadlock
/// happened. The set covers std blocking (`join`, `park`, `sleep`,
/// channel `recv`), the simtime wait vocabulary, and the progress pumps.
pub const BLOCKING_CALLS: &[&str] = &[
    "join",
    "reap",
    "recv",
    "recv_timeout",
    "wait",
    "wait_timeout",
    "wait_labeled",
    "wait_until",
    "wait_until_labeled",
    "wait_result",
    "wait_delivered",
    "wait_idle",
    "pump",
    "quiesce_machines",
    "park",
    "sleep",
    "advance_until",
    "advance_ns",
];

/// `join` is both `JoinHandle::join()` (blocking, zero arguments) and
/// `slice::join(sep)` (pure string glue). Only the empty-argument form
/// blocks.
fn blocking_join_shape(f: &SourceFile, idx: usize) -> bool {
    let Some(open) = f.next_code(idx + 1) else {
        return false;
    };
    matches!(f.tok(open), Tok::Punct('('))
        && matches!(
            f.next_code(open + 1).map(|i| f.tok(i)),
            Some(Tok::Punct(')'))
        )
}

/// DESIGN.md §9 P6: no blocking call and no nested blocking `.lock()`
/// while a `MutexGuard` is live. Guard lifetimes come from
/// [`crate::flow::guard_spans`] — `let`-bound guards live to the end of
/// the enclosing block (or `drop(g)`), `if let`/`match` scrutinee
/// temporaries live through the whole body and `else` chain (the PR-7
/// deadlock shape), other temporaries die at their statement.
///
/// Two shapes are exempt by construction:
/// * **Guard handoff** — the blocking call receives the guard binding
///   itself (`cv.wait(&mut st)`): the callee releases the lock while
///   blocked. This is the condvar protocol, not a bug.
/// * **`try_lock`** as the *nested* acquisition: it cannot wait.
pub fn pass_lock_lifetime(ws: &Workspace, out: &mut Vec<Diag>) {
    const PASS: &str = "lock-lifetime";
    for f in ws.files.iter().filter(|f| !f.in_tests_dir) {
        for def in f.fn_defs() {
            if f.is_test_token(def.body.0) {
                continue;
            }
            for g in guard_spans(f, def.body) {
                let kind = match g.kind {
                    GuardKind::LetBound => "let-bound",
                    GuardKind::Scrutinee => "scrutinee",
                    GuardKind::Temporary => "temporary",
                };
                for idx in (g.lock_idx + 1)..g.end.min(f.tokens.len()) {
                    let line = f.tokens[idx].line;
                    if f.method_call_at(idx, &["lock"]).is_some() {
                        if f.allowed_at(idx, PASS) || f.allowed_at(g.lock_idx, PASS) {
                            continue;
                        }
                        out.push(Diag {
                            pass: PASS,
                            file: f.path.clone(),
                            line,
                            msg: format!(
                                "nested `.lock()` on `{}` while the {kind} guard of \
                                 `{}` (line {}) is live in `{}` — release first, or \
                                 use try_lock, or justify the ordering with \
                                 `// checker-allow(lock-lifetime): <why>` (DESIGN.md §9 P6)",
                                crate::flow::lock_receiver_name(f, idx),
                                g.lock_name,
                                g.line,
                                def.name,
                            ),
                        });
                    } else if let Some(name) = f.any_call_at(idx, BLOCKING_CALLS) {
                        if name == "join" && !blocking_join_shape(f, idx) {
                            continue; // slice::join(sep), not a thread join
                        }
                        if call_takes_name(f, idx, g.name.as_deref()) {
                            continue; // condvar-style guard handoff
                        }
                        if f.allowed_at(idx, PASS) || f.allowed_at(g.lock_idx, PASS) {
                            continue;
                        }
                        out.push(Diag {
                            pass: PASS,
                            file: f.path.clone(),
                            line,
                            msg: format!(
                                "blocking call `{name}(` while the {kind} guard of \
                                 `{}` (line {}) is live in `{}` — take the value out \
                                 of the mutex before blocking (the 04d47ed pattern) \
                                 (DESIGN.md §9 P6)",
                                g.lock_name, g.line, def.name,
                            ),
                        });
                    }
                }
            }
        }
    }
    out.dedup();
}

// ----------------------------------------------------------------------
// Pass 7 — lock-order (cross-function)
// ----------------------------------------------------------------------

/// DESIGN.md §9 P7: the lock-order graph — `held → acquired` edges from
/// guard spans, propagated one level through direct calls
/// ([`crate::callgraph`]) — must be acyclic. A cycle means two code
/// paths take the same locks in opposite orders, which deadlocks the
/// moment two shard workers interleave. Edges acquired via `try_lock`
/// don't exist (it cannot wait), and an edge site annotated
/// `// checker-allow(lock-order): <why>` is removed before the check.
pub fn pass_lock_order(ws: &Workspace, out: &mut Vec<Diag>) {
    const PASS: &str = "lock-order";
    let es = callgraph::edges(ws);
    for c in callgraph::cycles(&es) {
        let sites: Vec<String> = c
            .example
            .iter()
            .take(4)
            .map(|e| {
                if e.via.is_empty() {
                    format!("{} → {} at {}:{}", e.held, e.acquired, e.file, e.line)
                } else {
                    format!(
                        "{} → {} via {}() at {}:{}",
                        e.held, e.acquired, e.via, e.file, e.line
                    )
                }
            })
            .collect();
        let (file, line) = c
            .example
            .first()
            .map(|e| (e.file.clone(), e.line))
            .unwrap_or_default();
        out.push(Diag {
            pass: PASS,
            file,
            line,
            msg: format!(
                "lock-order cycle between {{{}}} — acquisition orders conflict: {} \
                 (DESIGN.md §9 P7)",
                c.locks.join(", "),
                sites.join("; "),
            ),
        });
    }
}

// ----------------------------------------------------------------------
// Pass 8 — actor hygiene
// ----------------------------------------------------------------------

/// DESIGN.md §9 P8: machine bodies — `poll`/`on_wake` of any
/// `impl SimActor`, and `step` of any `impl EngineOp` — run on shard
/// workers at a frozen virtual instant and must stay *resumable*: no
/// OS-blocking primitive (the [`BLOCKING_CALLS`] vocabulary) and no
/// direct `thread::spawn` (machines are spawned through the clock so
/// the scheduler can account for them). Test code is exempt — fixtures
/// deliberately build stuck machines.
pub fn pass_actor_hygiene(ws: &Workspace, out: &mut Vec<Diag>) {
    const PASS: &str = "actor-hygiene";
    // `pump` is in the lock-lifetime vocabulary because it acquires the
    // defer queue, but it never blocks the OS thread — machines pumping
    // deferred completions at a frozen instant is the intended progress
    // pattern, so it is not a hygiene violation.
    let os_blocking: Vec<&str> = BLOCKING_CALLS
        .iter()
        .copied()
        .filter(|n| *n != "pump")
        .collect();
    for f in ws.files.iter().filter(|f| !f.in_tests_dir) {
        let regions = machine_regions(f);
        if regions.is_empty() {
            continue;
        }
        for (fn_name, body) in regions {
            if f.is_test_token(body.0) {
                continue;
            }
            for idx in body.0..body.1 {
                let line = f.tokens[idx].line;
                let found = if let Some(n) = f.any_call_at(idx, &os_blocking) {
                    if n == "join" && !blocking_join_shape(f, idx) {
                        None // slice::join(sep)
                    } else {
                        Some(format!("OS-blocking call `{n}(`"))
                    }
                } else if f.ident_at(idx, &["spawn"]).is_some()
                    && is_thread_path(f, idx)
                    && matches!(
                        f.next_code(idx + 1).map(|i| f.tok(i)),
                        Some(Tok::Punct('('))
                    )
                {
                    Some("direct `thread::spawn`".to_string())
                } else {
                    None
                };
                if let Some(what) = found {
                    if f.allowed_at(idx, PASS) {
                        continue;
                    }
                    out.push(Diag {
                        pass: PASS,
                        file: f.path.clone(),
                        line,
                        msg: format!(
                            "{what} inside machine body `{fn_name}` — machines run on \
                             shard workers and must stay resumable: return Pending with \
                             a wake hint instead (DESIGN.md §9 P8)"
                        ),
                    });
                }
            }
        }
    }
}

/// Machine-body regions of a file: for each `impl SimActor …` block the
/// bodies of `poll` and `on_wake`; for each `impl EngineOp …` block the
/// body of `step`. Returns `(fn name, body token range)` pairs.
fn machine_regions(f: &SourceFile) -> Vec<(String, (usize, usize))> {
    let mut out = Vec::new();
    let defs = f.fn_defs();
    for idx in 0..f.tokens.len() {
        if f.ident_at(idx, &["impl"]).is_none() {
            continue;
        }
        // Header: tokens up to the body `{` at paren/bracket depth 0.
        let mut header_names: Vec<&str> = Vec::new();
        let mut depth = 0i32;
        let mut j = idx;
        let open = loop {
            let Some(nj) = f.next_code(j + 1) else {
                break None;
            };
            j = nj;
            match f.tok(j) {
                Tok::Punct('(' | '[') => depth += 1,
                Tok::Punct(')' | ']') => depth -= 1,
                Tok::Punct('{') if depth == 0 => break Some(j),
                Tok::Punct(';') if depth == 0 => break None,
                Tok::Ident(s) => header_names.push(s.as_str()),
                _ => {}
            }
        };
        let Some(open) = open else { continue };
        let targets: &[&str] = if header_names.contains(&"SimActor") {
            &["poll", "on_wake"]
        } else if header_names.contains(&"EngineOp") {
            &["step"]
        } else {
            continue;
        };
        let close = f.match_delim(open).unwrap_or(f.tokens.len());
        for d in &defs {
            if d.body.0 > open && d.body.1 <= close + 1 && targets.contains(&d.name.as_str()) {
                out.push((d.name.clone(), d.body));
            }
        }
    }
    out
}
