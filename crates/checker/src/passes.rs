//! The five invariant passes.
//!
//! Each pass walks the lexed token streams of the library crates and
//! reports [`Diag`]s. All passes share two conventions:
//!
//! * **Comments and string literals never match.** The lexer classifies
//!   them; passes look only at code tokens. This is what the old CI grep
//!   gates could not do.
//! * **Line-level allow markers.** A finding on line *L* is suppressed by
//!   `// checker-allow(<pass-id>): <non-empty why>` on line *L* or
//!   *L − 1*. The justification is mandatory; an empty one is itself a
//!   violation of the marker grammar and does not suppress.

use crate::baseline::{Baseline, Counts};
use crate::lexer::Tok;
use crate::workspace::{SourceFile, Workspace, LIBRARY_CRATES};

/// One reported violation, printed as `file:line: [pass] message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diag {
    pub pass: &'static str,
    pub file: String,
    pub line: u32,
    pub msg: String,
}

impl std::fmt::Display for Diag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.pass, self.msg
        )
    }
}

/// Run every pass; diagnostics come back grouped by pass, then file,
/// then line — the scan order is deterministic.
pub fn run_all(ws: &Workspace) -> Vec<Diag> {
    let mut out = Vec::new();
    pass_nonblocking_engine(ws, &mut out);
    pass_blocking_markers(ws, &mut out);
    pass_panic_ratchet(ws, &mut out);
    pass_determinism(ws, &mut out);
    pass_status_literals(ws, &mut out);
    out
}

fn ident_is<'f>(f: &'f SourceFile, idx: usize, names: &[&str]) -> Option<&'f str> {
    match f.tok(idx) {
        Tok::Ident(s) if names.iter().any(|n| n == s) => Some(s.as_str()),
        _ => None,
    }
}

/// Method-call shape at `idx`: `.` `name` `(` with `name` in `names`.
/// Returns the method name. Comments between the tokens are skipped, so
/// a marker comment cannot break the match.
fn method_call<'f>(f: &'f SourceFile, idx: usize, names: &[&str]) -> Option<&'f str> {
    let name = ident_is(f, idx, names)?;
    if !matches!(f.prev_code(idx).map(|i| f.tok(i)), Some(Tok::Punct('.'))) {
        return None;
    }
    match f.next_code(idx + 1).map(|i| f.tok(i)) {
        Some(Tok::Punct('(')) => Some(name),
        _ => None,
    }
}

/// Call shape at `idx`: `name` `(` with `name` in `names` (any receiver).
fn any_call<'f>(f: &'f SourceFile, idx: usize, names: &[&str]) -> Option<&'f str> {
    let name = ident_is(f, idx, names)?;
    match f.next_code(idx + 1).map(|i| f.tok(i)) {
        Some(Tok::Punct('(')) => Some(name),
        _ => None,
    }
}

// ----------------------------------------------------------------------
// Pass 1 — non-blocking engine
// ----------------------------------------------------------------------

/// DESIGN.md §8c invariant 1: `crates/clmpi/src/engine.rs` is the data
/// plane; it must never block the engine thread (`.wait(…)`, `.recv(…)`,
/// `.wait_labeled(…)`, `.wait_result(…)`) and must never advance virtual
/// time itself (`advance_until(…)`, `advance_ns(…)`). Machines *park*
/// with a wake hint instead. Test modules inside engine.rs are exempt —
/// tests sit on the control-plane side of the line.
pub fn pass_nonblocking_engine(ws: &Workspace, out: &mut Vec<Diag>) {
    const PASS: &str = "non-blocking-engine";
    const BLOCKING: &[&str] = &["wait", "recv", "wait_labeled", "wait_result"];
    const CLOCK: &[&str] = &["advance_until", "advance_ns"];
    for f in ws
        .files
        .iter()
        .filter(|f| f.path.ends_with("clmpi/src/engine.rs"))
    {
        for idx in 0..f.tokens.len() {
            if f.is_test_token(idx) {
                continue;
            }
            let line = f.tokens[idx].line;
            let hit = method_call(f, idx, BLOCKING)
                .map(|n| format!("blocking call `.{n}(`"))
                .or_else(|| {
                    any_call(f, idx, CLOCK).map(|n| format!("virtual-time advance `{n}(`"))
                });
            if let Some(what) = hit {
                if f.allowed_at(idx, PASS) {
                    continue;
                }
                out.push(Diag {
                    pass: PASS,
                    file: f.path.clone(),
                    line,
                    msg: format!(
                        "{what} in the progress engine — machines must park with a \
                         wake hint, never block or advance the clock (DESIGN.md §9 P1)"
                    ),
                });
            }
        }
    }
}

// ----------------------------------------------------------------------
// Pass 2 — blocking-api markers
// ----------------------------------------------------------------------

/// DESIGN.md §8c invariant 2: the clmpi control plane may block only
/// where an MPI/OpenCL semantic requires it, and every such call site
/// carries a `// blocking-api: <why>` marker with a non-empty rationale —
/// on the call's line, anywhere in the call's (possibly multi-line)
/// statement, or the line directly above the statement. Applies to all
/// of `crates/clmpi/src` except engine.rs (pass 1 forbids blocking there
/// outright); test code blocks freely.
pub fn pass_blocking_markers(ws: &Workspace, out: &mut Vec<Diag>) {
    const PASS: &str = "blocking-marker";
    const BLOCKING: &[&str] = &["wait", "recv", "wait_labeled", "wait_result"];
    for f in ws.files.iter().filter(|f| {
        f.krate == "clmpi"
            && !f.in_tests_dir
            && f.path.contains("/src/")
            && !f.path.ends_with("engine.rs")
    }) {
        for idx in 0..f.tokens.len() {
            if f.is_test_token(idx) {
                continue;
            }
            let Some(name) = method_call(f, idx, BLOCKING) else {
                continue;
            };
            let line = f.tokens[idx].line;
            if f.allowed_at(idx, PASS) {
                continue;
            }
            match f.marker_in_stmt(idx, "blocking-api:") {
                Some(why) if !why.is_empty() => {}
                Some(_) => out.push(Diag {
                    pass: PASS,
                    file: f.path.clone(),
                    line,
                    msg: format!(
                        "blocking call `.{name}(` has a `// blocking-api:` marker with an \
                         empty rationale — say why this must block (DESIGN.md §9 P2)"
                    ),
                }),
                None => out.push(Diag {
                    pass: PASS,
                    file: f.path.clone(),
                    line,
                    msg: format!(
                        "blocking call `.{name}(` without a `// blocking-api: <why>` marker \
                         on this line or the line above (DESIGN.md §9 P2)"
                    ),
                }),
            }
        }
    }
}

// ----------------------------------------------------------------------
// Pass 3 — panic-path ratchet
// ----------------------------------------------------------------------

/// Count `unwrap(` / `expect(` / `panic!` code tokens per library crate
/// and compare against the committed `crates/checker/baseline.toml`.
/// Counts may only move down; an improvement must be locked in by
/// regenerating the baseline, and a regression is an error naming the
/// crate and the delta.
pub fn pass_panic_ratchet(ws: &Workspace, out: &mut Vec<Diag>) {
    const PASS: &str = "panic-ratchet";
    let baseline = match Baseline::parse(&ws.baseline_text) {
        Ok(b) => b,
        Err((line, msg)) => {
            out.push(Diag {
                pass: PASS,
                file: "crates/checker/baseline.toml".into(),
                line,
                msg,
            });
            return;
        }
    };
    for krate in LIBRARY_CRATES {
        let actual = count_panic_paths(ws, krate);
        let base = baseline.crates.get(krate).copied().unwrap_or_default();
        for (kind, got, want) in [
            ("unwrap(", actual.unwrap, base.unwrap),
            ("expect(", actual.expect, base.expect),
            ("panic!", actual.panic, base.panic),
        ] {
            if got > want {
                out.push(Diag {
                    pass: PASS,
                    file: format!("crates/{krate}"),
                    line: 0,
                    msg: format!(
                        "`{kind}` count ratcheted UP: {got} > baseline {want} — new code \
                         must not add panic paths; return a Result or justify with \
                         context via expect() *and* lower another site (DESIGN.md §9 P3)"
                    ),
                });
            } else if got < want {
                out.push(Diag {
                    pass: PASS,
                    file: format!("crates/{krate}"),
                    line: 0,
                    msg: format!(
                        "`{kind}` count improved: {got} < baseline {want} — lock it in \
                         with `cargo run -p checker -- --write-baseline` and commit \
                         crates/checker/baseline.toml"
                    ),
                });
            }
        }
    }
}

/// The counting half of pass 3, also used by `--write-baseline`.
pub fn count_panic_paths(ws: &Workspace, krate: &str) -> Counts {
    let mut c = Counts::default();
    for f in ws.files.iter().filter(|f| f.krate == krate) {
        for idx in 0..f.tokens.len() {
            if any_call(f, idx, &["unwrap"]).is_some() {
                c.unwrap += 1;
            } else if any_call(f, idx, &["expect"]).is_some() {
                c.expect += 1;
            } else if ident_is(f, idx, &["panic"]).is_some()
                && matches!(
                    f.next_code(idx + 1).map(|i| f.tok(i)),
                    Some(Tok::Punct('!'))
                )
            {
                c.panic += 1;
            }
        }
    }
    c
}

/// Compute the full baseline for the current tree.
pub fn current_baseline(ws: &Workspace) -> Baseline {
    let mut b = Baseline::default();
    for krate in LIBRARY_CRATES {
        b.crates
            .insert(krate.to_string(), count_panic_paths(ws, krate));
    }
    b
}

// ----------------------------------------------------------------------
// Pass 4 — determinism lint
// ----------------------------------------------------------------------

/// The five library crates are deterministic by contract: identical
/// seeds replay identical virtual-time traces. Wall-clock types
/// (`std::time::Instant`, `SystemTime`), real sleeps (`thread::sleep`),
/// and iteration-order-unstable collections (`HashMap`, `HashSet`) all
/// break that contract. Since iteration-sensitivity cannot be decided
/// lexically, *every* unordered-collection use must either migrate to
/// `BTreeMap`/`BTreeSet` or carry a
/// `// checker-allow(determinism): <why>` marker proving keyed-only
/// access. Test code is exempt (it asserts on outcomes, not traces).
pub fn pass_determinism(ws: &Workspace, out: &mut Vec<Diag>) {
    const PASS: &str = "determinism";
    for f in ws.files.iter().filter(|f| !f.in_tests_dir) {
        for idx in 0..f.tokens.len() {
            if f.is_test_token(idx) {
                continue;
            }
            let line = f.tokens[idx].line;
            let finding = if let Some(n) = ident_is(f, idx, &["Instant", "SystemTime"]) {
                Some(format!(
                    "wall-clock type `{n}` — deterministic crates tell time only \
                     through the simtime clock"
                ))
            } else if ident_is(f, idx, &["sleep"]).is_some() && is_thread_path(f, idx) {
                Some("real `thread::sleep` — park on the simtime clock instead".to_string())
            } else {
                ident_is(f, idx, &["HashMap", "HashSet"]).map(|n| {
                    format!(
                        "unordered collection `{n}` — use BTreeMap/BTreeSet or justify \
                         keyed-only access with `// checker-allow(determinism): <why>`"
                    )
                })
            };
            if let Some(msg) = finding {
                if f.allowed_at(idx, PASS) {
                    continue;
                }
                out.push(Diag {
                    pass: PASS,
                    file: f.path.clone(),
                    line,
                    msg: format!("{msg} (DESIGN.md §9 P4)"),
                });
            }
        }
    }
}

/// Is the identifier at `idx` path-qualified by `thread::`?
fn is_thread_path(f: &SourceFile, idx: usize) -> bool {
    let Some(c1) = f.prev_code(idx) else {
        return false;
    };
    let Some(c2) = f.prev_code(c1) else {
        return false;
    };
    let Some(c3) = f.prev_code(c2) else {
        return false;
    };
    matches!(f.tok(c1), Tok::Punct(':'))
        && matches!(f.tok(c2), Tok::Punct(':'))
        && matches!(f.tok(c3), Tok::Ident(s) if s == "thread")
}

// ----------------------------------------------------------------------
// Pass 5 — status-literal hygiene
// ----------------------------------------------------------------------

/// The negative CL status codes live in `minicl::status`; restating them
/// as raw literals (`-14`, `-1100`) reintroduces the drift that module
/// was created to end. Outside `crates/minicl/src/status.rs`, any
/// negated occurrence of a known status value must use the named
/// constant. String literals and comments (e.g. an assertion message
/// quoting "-1100") are naturally exempt via the lexer.
pub fn pass_status_literals(ws: &Workspace, out: &mut Vec<Diag>) {
    const PASS: &str = "status-literal";
    const STATUS: &[(u128, &str)] = &[
        (
            14,
            "minicl::status::EXEC_STATUS_ERROR_FOR_EVENTS_IN_WAIT_LIST",
        ),
        (1100, "minicl::status::CL_MPI_TRANSFER_ERROR"),
    ];
    for f in ws
        .files
        .iter()
        .filter(|f| !f.path.ends_with("minicl/src/status.rs"))
    {
        for idx in 0..f.tokens.len() {
            let Tok::Int { text, value } = f.tok(idx) else {
                continue;
            };
            let Some(&(_, constant)) = STATUS.iter().find(|&&(v, _)| Some(v) == *value) else {
                continue;
            };
            if !matches!(f.prev_code(idx).map(|i| f.tok(i)), Some(Tok::Punct('-'))) {
                continue;
            }
            let line = f.tokens[idx].line;
            if f.allowed_at(idx, PASS) {
                continue;
            }
            out.push(Diag {
                pass: PASS,
                file: f.path.clone(),
                line,
                msg: format!(
                    "raw status literal `-{text}` — name it: use {constant} \
                     (DESIGN.md §9 P5)"
                ),
            });
        }
    }
}
