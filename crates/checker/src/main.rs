//! CLI entry point: run the eight passes over the workspace (the CI
//! gate), print a machine-readable report (`--json`), explain a pass
//! (`--explain <pass>`), or regenerate the ratchet baseline
//! (`--write-baseline`).

use std::process::ExitCode;

use checker::{current_baseline, run_all, workspace_root, Diag, Workspace, PASS_IDS};

/// Rule and rationale per pass, printed by `--explain`. Kept next to the
/// CLI so the text stays a usage surface, not analysis logic.
const EXPLANATIONS: [(&str, &str); 8] = [
    (
        "non-blocking-engine",
        "crates/clmpi/src/engine.rs is the data plane. It must never block the\n\
         engine thread (.wait/.recv/.wait_labeled/.wait_result) and must never\n\
         advance virtual time itself (advance_until/advance_ns). Machines park\n\
         with a wake hint instead; blocking there would stall every in-flight\n\
         command on the engine. (DESIGN.md §9 P1)",
    ),
    (
        "blocking-marker",
        "The clmpi control plane may block only where an MPI/OpenCL semantic\n\
         requires it, and each such call site carries a `// blocking-api: <why>`\n\
         marker with a non-empty rationale, so every block is a documented\n\
         decision. (DESIGN.md §9 P2)",
    ),
    (
        "panic-ratchet",
        "Counts of unwrap( / expect( / panic! / unreachable! per library crate —\n\
         and of checker-allow(<pass>) markers per pass — are pinned in\n\
         crates/checker/baseline.toml and may only move DOWN. Improvements are\n\
         locked in with --write-baseline; regressions fail CI. (DESIGN.md §9 P3)",
    ),
    (
        "determinism",
        "The library crates replay identical virtual-time traces from identical\n\
         seeds. Wall-clock types (Instant/SystemTime), real thread::sleep, and\n\
         iteration-order-unstable collections (HashMap/HashSet) all break that\n\
         contract; unordered collections need a checker-allow(determinism)\n\
         justification proving keyed-only access. (DESIGN.md §9 P4)",
    ),
    (
        "status-literal",
        "Negative CL status codes live in minicl::status. Raw -14 / -1100\n\
         literals outside status.rs reintroduce drift; use the named constants.\n\
         (DESIGN.md §9 P5)",
    ),
    (
        "lock-lifetime",
        "No blocking call (join/recv/wait*/pump/quiesce_machines/park/…) and no\n\
         nested blocking .lock() while a MutexGuard is live. Guard lifetimes are\n\
         tracked per function: let-bound guards live to the end of the enclosing\n\
         block (or drop(g)); `if let`/`match` scrutinee temporaries live through\n\
         the whole body and else-chain — the exact shape of the PR-7 drop\n\
         deadlock (`if let Some(h) = handle.lock().take() { h.reap() }`); other\n\
         temporaries die at their statement. Condvar-style guard handoff\n\
         (cv.wait(&mut st)) and nested try_lock are exempt by construction.\n\
         Fix: take the value out of the mutex first — `let h = lock().take();`\n\
         then block. (DESIGN.md §9 P6)",
    ),
    (
        "lock-order",
        "Every guard span contributes held→acquired edges for locks taken while\n\
         it is live — lexically, and one level through direct calls via a\n\
         per-function lock summary. The resulting named-lock order graph must\n\
         be acyclic: a cycle means two paths take the same locks in opposite\n\
         orders, which deadlocks under shard-worker interleaving. try_lock\n\
         never appears on the acquired side (it cannot wait). (DESIGN.md §9 P7)",
    ),
    (
        "actor-hygiene",
        "poll/on_wake of every `impl SimActor` and step of every `impl EngineOp`\n\
         run on shard workers at a frozen virtual instant. They must stay\n\
         resumable: no OS-blocking primitive and no direct thread::spawn —\n\
         machines return Pending with a wake hint and spawn through the clock\n\
         so the scheduler can account for them. (DESIGN.md §9 P8)",
    ),
];

/// Minimal JSON string escaping — the report contains paths and
/// diagnostic prose only.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// The machine-readable report: pass list, file count, and findings.
fn json_report(ws: &Workspace, diags: &[Diag]) -> String {
    let mut s = String::from("{\n  \"tool\": \"clmpi-check\",\n");
    s.push_str(&format!("  \"files\": {},\n", ws.files.len()));
    s.push_str("  \"passes\": [");
    for (i, p) in PASS_IDS.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&format!("\"{p}\""));
    }
    s.push_str("],\n");
    s.push_str(&format!("  \"violations\": {},\n", diags.len()));
    s.push_str("  \"findings\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"pass\": \"{}\", \"file\": \"{}\", \"line\": {}, \"msg\": \"{}\"}}",
            json_escape(d.pass),
            json_escape(&d.file),
            d.line,
            json_escape(&d.msg)
        ));
    }
    if !diags.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("]\n}\n");
    s
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(pos) = args.iter().position(|a| a == "--explain") {
        let Some(pass) = args.get(pos + 1) else {
            eprintln!("clmpi-check: --explain needs a pass id; one of: {PASS_IDS:?}");
            return ExitCode::FAILURE;
        };
        let Some((id, text)) = EXPLANATIONS.iter().find(|(id, _)| id == pass) else {
            eprintln!("clmpi-check: unknown pass `{pass}`; one of: {PASS_IDS:?}");
            return ExitCode::FAILURE;
        };
        println!("[{id}]\n{text}");
        return ExitCode::SUCCESS;
    }
    let write_baseline = args.iter().any(|a| a == "--write-baseline");
    let json = args.iter().any(|a| a == "--json");
    let root = workspace_root();
    let ws = match Workspace::load(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!(
                "clmpi-check: cannot load workspace at {}: {e}",
                root.display()
            );
            return ExitCode::FAILURE;
        }
    };
    if write_baseline {
        let path = root.join("crates/checker/baseline.toml");
        let text = current_baseline(&ws).serialize();
        if let Err(e) = std::fs::write(&path, &text) {
            eprintln!("clmpi-check: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        print!("{text}");
        eprintln!("clmpi-check: wrote {}", path.display());
        return ExitCode::SUCCESS;
    }
    let diags = run_all(&ws);
    if json {
        print!("{}", json_report(&ws, &diags));
        return if diags.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    for d in &diags {
        eprintln!("{d}");
    }
    if diags.is_empty() {
        eprintln!(
            "clmpi-check: {} files, {} passes, 0 violations",
            ws.files.len(),
            PASS_IDS.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("clmpi-check: {} violation(s)", diags.len());
        ExitCode::FAILURE
    }
}
