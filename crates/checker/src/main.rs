//! CLI entry point: run the five passes over the workspace (the CI
//! gate), or regenerate the panic-path baseline.

use std::process::ExitCode;

use checker::{current_baseline, run_all, workspace_root, Workspace};

fn main() -> ExitCode {
    let write_baseline = std::env::args().any(|a| a == "--write-baseline");
    let root = workspace_root();
    let ws = match Workspace::load(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!(
                "clmpi-check: cannot load workspace at {}: {e}",
                root.display()
            );
            return ExitCode::FAILURE;
        }
    };
    if write_baseline {
        let path = root.join("crates/checker/baseline.toml");
        let text = current_baseline(&ws).serialize();
        if let Err(e) = std::fs::write(&path, &text) {
            eprintln!("clmpi-check: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        print!("{text}");
        eprintln!("clmpi-check: wrote {}", path.display());
        return ExitCode::SUCCESS;
    }
    let diags = run_all(&ws);
    for d in &diags {
        eprintln!("{d}");
    }
    if diags.is_empty() {
        eprintln!(
            "clmpi-check: {} files, 5 passes, 0 violations",
            ws.files.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("clmpi-check: {} violation(s)", diags.len());
        ExitCode::FAILURE
    }
}
