//! Guard-lifetime flow analysis: where does a `MutexGuard` live?
//!
//! PR 7 shipped a real deadlock whose shape was purely lexical:
//!
//! ```text
//! if let Some(h) = self.handle.lock().take() {   // guard lives here…
//!     h.reap();                                  // …across a thread join
//! }
//! ```
//!
//! In Rust ≤ 2021, an `if let` scrutinee's temporaries — including the
//! `MutexGuard` produced by `.lock()` — stay alive for the *entire*
//! `if let` body (and any `else` chain). Any blocking call inside that
//! region runs while the lock is held: `on_worker_thread` on the machine
//! being joined then deadlocks against the drop path. The same class
//! covers `let g = x.lock()` followed by a blocking call anywhere in the
//! enclosing block, and `match x.lock().…` scrutinees.
//!
//! This module computes, per function body, the **guard spans**: for each
//! `.lock()` / `.try_lock()` call, the token range over which the
//! resulting guard is (conservatively, per the language's temporary
//! rules) still alive. The `lock-lifetime` pass then flags blocking
//! calls and nested `.lock()` acquisitions inside those spans; the
//! `lock-order` pass uses the same spans to build held-while-acquiring
//! edges.
//!
//! The tracker is deliberately lexical — no types, no borrow checking —
//! which makes it conservative in both directions. Two escape hatches
//! keep it honest:
//!
//! * **Guard handoff:** a blocking call that receives the guard binding
//!   itself as an argument (`cv.wait(&mut st)`) is the condvar pattern —
//!   the callee releases the lock while blocked — and is not flagged.
//! * **`drop(g)`** ends a let-bound guard's span early, mirroring the
//!   standard fix of releasing before blocking.

use crate::lexer::Tok;
use crate::workspace::SourceFile;

/// How a guard came to exist, which decides how long it lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuardKind {
    /// `let g = x.lock();` — the binding holds the guard until the end
    /// of the enclosing block (or an explicit `drop(g)`).
    LetBound,
    /// `if let` / `while let` / `match` / `for` scrutinee temporary:
    /// alive for the whole body (including chained `else` blocks).
    Scrutinee,
    /// Any other temporary (`x.lock().field`, `f(&mut x.lock())`): dies
    /// at the end of its statement.
    Temporary,
}

/// One guard lifetime: the token at `lock_idx` is the `lock`/`try_lock`
/// identifier; the guard is alive over `(lock_idx, end)` (half-open).
#[derive(Debug, Clone)]
pub struct GuardSpan {
    pub lock_idx: usize,
    /// First token index past the guard's life.
    pub end: usize,
    pub kind: GuardKind,
    /// The binding name for [`GuardKind::LetBound`] guards and for
    /// named scrutinee patterns (`if let Some(s) = x.try_lock()`),
    /// used by the handoff exemption.
    pub name: Option<String>,
    /// Name of the lock expression (last field/method identifier before
    /// `.lock()`), e.g. `state` for `self.inner.state.lock()`.
    pub lock_name: String,
    /// True for `.try_lock()` — still a guard, but acquiring it can
    /// never block, so it is exempt from nested-acquisition findings.
    pub non_blocking: bool,
    pub line: u32,
}

/// The last field/method identifier of the receiver chain before
/// `.lock()` at `lock_idx`: `self.inner.state.lock()` → `state`,
/// `clock.shard(i).lock()` → `shard`. Falls back to `<expr>` when the
/// receiver is not a plain chain (e.g. a parenthesized expression).
pub fn lock_receiver_name(f: &SourceFile, lock_idx: usize) -> String {
    // prev_code(lock_idx) is the `.`; look before it.
    let Some(dot) = f.prev_code(lock_idx) else {
        return "<expr>".into();
    };
    let Some(mut i) = f.prev_code(dot) else {
        return "<expr>".into();
    };
    // Skip a call's argument list: `shard(i).lock()`.
    if matches!(f.tok(i), Tok::Punct(')')) {
        let mut depth = 0usize;
        loop {
            match f.tok(i) {
                Tok::Punct(')') => depth += 1,
                Tok::Punct('(') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            let Some(p) = f.prev_code(i) else {
                return "<expr>".into();
            };
            i = p;
        }
        let Some(p) = f.prev_code(i) else {
            return "<expr>".into();
        };
        i = p;
    }
    match f.tok(i) {
        Tok::Ident(s) => s.clone(),
        _ => "<expr>".into(),
    }
}

/// First code token of the statement containing `idx`: walk back over
/// code tokens to the nearest `;` / `{` / `}` boundary.
fn stmt_start(f: &SourceFile, idx: usize) -> usize {
    let mut first = idx;
    let mut i = idx;
    while let Some(p) = f.prev_code(i) {
        if matches!(f.tok(p), Tok::Punct(';' | '{' | '}')) {
            break;
        }
        first = p;
        i = p;
    }
    first
}

/// Token index just past the end of the statement containing `idx`: the
/// first `;` at the statement's own bracket depth, or the enclosing
/// block's `}` for tail expressions. `limit` bounds the search (the
/// function body end).
fn stmt_end(f: &SourceFile, idx: usize, limit: usize) -> usize {
    let mut depth = 0i32;
    let mut i = idx;
    loop {
        match f.tok(i) {
            Tok::Punct('(' | '[' | '{') => depth += 1,
            Tok::Punct(')' | ']') => depth -= 1,
            Tok::Punct('}') => {
                depth -= 1;
                if depth < 0 {
                    return i; // enclosing block closed: tail expression
                }
            }
            Tok::Punct(';') if depth <= 0 => return i + 1,
            _ => {}
        }
        let Some(n) = f.next_code(i + 1) else {
            return limit;
        };
        i = n;
        if i >= limit {
            return limit;
        }
    }
}

/// Index of the `}` closing the innermost block that contains `idx`,
/// scanning within `body` (a function's half-open token range). When
/// `idx` sits at body top level this is the body's final `}`.
fn enclosing_block_end(f: &SourceFile, body: (usize, usize), idx: usize) -> usize {
    let mut stack: Vec<usize> = Vec::new();
    let mut i = body.0;
    while i < body.1 {
        if i == idx {
            break;
        }
        match f.tok(i) {
            Tok::Punct('{') => stack.push(i),
            Tok::Punct('}') => {
                stack.pop();
            }
            _ => {}
        }
        let Some(n) = f.next_code(i + 1) else {
            break;
        };
        i = n;
    }
    let open = stack.last().copied().unwrap_or(body.0);
    f.match_delim(open).map_or(body.1, |e| e)
}

/// The span of a scrutinee guard: from the statement's first `{` after
/// `idx`, through its matching `}`, extended over any `else` / `else if`
/// chain — matching the language rule that scrutinee temporaries live
/// until the end of the whole `if let` / `match` expression.
fn scrutinee_end(f: &SourceFile, idx: usize, limit: usize) -> usize {
    let mut i = idx;
    // Find the body opener at depth 0 relative to the scrutinee.
    let mut depth = 0i32;
    let open = loop {
        match f.tok(i) {
            Tok::Punct('(' | '[') => depth += 1,
            Tok::Punct(')' | ']') => depth -= 1,
            Tok::Punct('{') if depth == 0 => break Some(i),
            Tok::Punct(';') if depth == 0 => return i + 1, // malformed
            _ => {}
        }
        match f.next_code(i + 1) {
            Some(n) if n < limit => i = n,
            _ => break None,
        }
    };
    let Some(open) = open else {
        return limit;
    };
    let mut end = f.match_delim(open).map_or(limit, |e| e + 1);
    // `} else {` / `} else if … {` chains keep the scrutinee alive.
    while let Some(n) = f.next_code(end) {
        if n >= limit || !matches!(f.tok(n), Tok::Ident(s) if s == "else") {
            break;
        }
        // Find the else-arm's `{` and jump past its `}`.
        let mut j = n;
        let next_open = loop {
            match f.next_code(j + 1) {
                Some(k) if k < limit => {
                    j = k;
                    if matches!(f.tok(j), Tok::Punct('{')) {
                        break Some(j);
                    }
                }
                _ => break None,
            }
        };
        match next_open {
            Some(o) => end = f.match_delim(o).map_or(limit, |e| e + 1),
            None => break,
        }
    }
    end.min(limit)
}

/// Compute every guard span inside `body` (a half-open token range, as
/// produced by [`SourceFile::fn_defs`]).
pub fn guard_spans(f: &SourceFile, body: (usize, usize)) -> Vec<GuardSpan> {
    let mut out = Vec::new();
    for idx in body.0..body.1 {
        let name_hit = f
            .method_call_at(idx, &["lock", "try_lock"])
            .map(|n| n == "try_lock");
        let Some(non_blocking) = name_hit else {
            continue;
        };
        let line = f.tokens[idx].line;
        let lock_name = lock_receiver_name(f, idx);
        let start = stmt_start(f, idx);
        let first = match f.tok(start) {
            Tok::Ident(s) => s.as_str(),
            _ => "",
        };
        let second = f
            .next_code(start + 1)
            .and_then(|i| match f.tok(i) {
                Tok::Ident(s) => Some(s.as_str()),
                _ => None,
            })
            .unwrap_or("");
        let (kind, name, end) = if matches!(first, "if" | "while") && second == "let"
            || matches!(first, "match" | "for")
        {
            // Scrutinee temporary: alive for the whole body/else chain.
            // (`for` too: the iterator expression is held all loop long.)
            let pat_name = (first != "match" && first != "for")
                .then(|| pattern_binding(f, start, idx))
                .flatten();
            (
                GuardKind::Scrutinee,
                pat_name,
                scrutinee_end(f, idx, body.1),
            )
        } else if matches!(first, "if" | "while") {
            // Plain boolean condition (`if x.lock().flag { … }`): unlike
            // an `if let` scrutinee, condition temporaries are dropped
            // *before* the branch runs — the guard dies at the body `{`.
            (GuardKind::Temporary, None, condition_end(f, idx, body.1))
        } else if first == "let" {
            // `let g = x.lock();` binds the guard only when `.lock()` is
            // the initializer's final call — `let v = x.lock().take();`
            // binds the *taken value* and the guard dies at the `;`.
            let open = f.next_code(idx + 1).unwrap_or(idx); // the `(`
            let after = f.match_delim(open).and_then(|c| f.next_code(c + 1));
            let final_call = match after.map(|i| f.tok(i)) {
                Some(Tok::Punct(';')) => true,
                Some(Tok::Ident(s)) if s == "else" => true, // let-else
                Some(Tok::Punct('?')) => true,              // lock().… never; defensive
                _ => false,
            };
            if final_call {
                let name = pattern_binding(f, start, idx);
                let block_end = enclosing_block_end(f, body, idx);
                let end = drop_site(f, idx, block_end, name.as_deref()).unwrap_or(block_end);
                (GuardKind::LetBound, name, end)
            } else {
                (GuardKind::Temporary, None, stmt_end(f, idx, body.1))
            }
        } else {
            (GuardKind::Temporary, None, stmt_end(f, idx, body.1))
        };
        out.push(GuardSpan {
            lock_idx: idx,
            end: end.min(body.1),
            kind,
            name,
            lock_name,
            non_blocking,
            line,
        });
    }
    out
}

/// End of a plain `if`/`while` condition scope: the body `{` at depth 0
/// after `idx` — where condition temporaries are dropped.
fn condition_end(f: &SourceFile, idx: usize, limit: usize) -> usize {
    let mut depth = 0i32;
    let mut i = idx;
    loop {
        match f.tok(i) {
            Tok::Punct('(' | '[') => depth += 1,
            Tok::Punct(')' | ']') => depth -= 1,
            Tok::Punct('{') if depth == 0 => return i,
            Tok::Punct(';') if depth == 0 => return i + 1, // malformed
            _ => {}
        }
        match f.next_code(i + 1) {
            Some(n) if n < limit => i = n,
            _ => return limit,
        }
    }
}

/// The binding name introduced by the pattern between `start` (the
/// `let`/`if`/`while` keyword) and the `=` before `lock_idx`: the last
/// identifier that is not a pattern constructor (`Some`, `Ok`, `Err`) or
/// keyword. `None` for `_` or multi-binding patterns we don't model.
fn pattern_binding(f: &SourceFile, start: usize, lock_idx: usize) -> Option<String> {
    let mut best: Option<String> = None;
    let mut i = start;
    while i < lock_idx {
        match f.tok(i) {
            Tok::Punct('=') => break,
            Tok::Ident(s)
                if !matches!(
                    s.as_str(),
                    "let" | "if" | "while" | "mut" | "ref" | "Some" | "Ok" | "Err" | "Box"
                ) =>
            {
                best = Some(s.clone());
            }
            _ => {}
        }
        i = f.next_code(i + 1)?;
    }
    best
}

/// First `drop(name)` call past `lock_idx` (before `limit`): returns the
/// index just past its statement, ending the guard span early.
fn drop_site(f: &SourceFile, lock_idx: usize, limit: usize, name: Option<&str>) -> Option<usize> {
    let name = name?;
    for i in lock_idx..limit {
        if f.any_call_at(i, &["drop"]).is_some() {
            let open = f.next_code(i + 1)?;
            let close = f.match_delim(open)?;
            let arg_is_name =
                (open..=close).any(|j| matches!(f.tok(j), Tok::Ident(s) if s == name));
            if arg_is_name && close < limit {
                return Some(close + 1);
            }
        }
    }
    None
}

/// Does the call at `call_idx` (an identifier with `(` next) take
/// `name` among its arguments? Used for the guard-handoff exemption:
/// `cv.wait(&mut st)` hands the guard to the callee, which releases it.
pub fn call_takes_name(f: &SourceFile, call_idx: usize, name: Option<&str>) -> bool {
    let Some(name) = name else {
        return false;
    };
    let Some(open) = f.next_code(call_idx + 1) else {
        return false;
    };
    if !matches!(f.tok(open), Tok::Punct('(')) {
        return false;
    }
    let Some(close) = f.match_delim(open) else {
        return false;
    };
    (open..=close).any(|j| matches!(f.tok(j), Tok::Ident(s) if s == name))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::parse(
            "crates/simtime/src/a.rs".into(),
            "simtime".into(),
            false,
            src,
        )
    }

    fn spans_of(src: &str) -> (SourceFile, Vec<GuardSpan>) {
        let f = file(src);
        let defs = f.fn_defs();
        assert!(!defs.is_empty(), "fixture must contain a fn");
        let spans = guard_spans(&f, defs[0].body);
        (f, spans)
    }

    #[test]
    fn let_bound_guard_lives_to_block_end() {
        let src = "fn f(m: &Mutex<u32>) {\n    let g = m.lock();\n    use_it(&g);\n}\n";
        let (f, spans) = spans_of(src);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].kind, GuardKind::LetBound);
        assert_eq!(spans[0].name.as_deref(), Some("g"));
        // Ends at the function's closing brace.
        assert!(matches!(f.tok(spans[0].end), Tok::Punct('}')));
    }

    #[test]
    fn drop_ends_a_let_bound_span_early() {
        let src = "fn f(m: &Mutex<u32>) {\n    let g = m.lock();\n    drop(g);\n    blocking.join();\n}\n";
        let (f, spans) = spans_of(src);
        assert_eq!(spans.len(), 1);
        let join_idx = (0..f.tokens.len())
            .find(|&i| matches!(f.tok(i), Tok::Ident(s) if s == "join"))
            .expect("fixture has a join");
        assert!(
            spans[0].end <= join_idx,
            "span must close before the join: end={} join={join_idx}",
            spans[0].end
        );
    }

    #[test]
    fn taken_value_is_not_a_guard_binding() {
        // The 04d47ed fix pattern: `.lock().take()` — the binding holds
        // the taken value; the guard itself dies at the semicolon.
        let src = "fn f(m: &Mutex<Option<H>>) {\n    let j = m.lock().take();\n    if let Some(j) = j {\n        j.join();\n    }\n}\n";
        let (f, spans) = spans_of(src);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].kind, GuardKind::Temporary);
        let join_idx = (0..f.tokens.len())
            .find(|&i| matches!(f.tok(i), Tok::Ident(s) if s == "join"))
            .expect("fixture has a join");
        assert!(spans[0].end <= join_idx, "guard dead before the join");
    }

    #[test]
    fn if_let_scrutinee_spans_the_whole_body() {
        // The PR-7 deadlock shape: scrutinee guard alive across the body.
        let src = "fn f(m: &Mutex<Option<H>>) {\n    if let Some(h) = m.lock().take() {\n        h.join();\n    }\n}\n";
        let (f, spans) = spans_of(src);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].kind, GuardKind::Scrutinee);
        let join_idx = (0..f.tokens.len())
            .find(|&i| matches!(f.tok(i), Tok::Ident(s) if s == "join"))
            .expect("fixture has a join");
        assert!(
            spans[0].end > join_idx,
            "scrutinee guard must cover the join"
        );
    }

    #[test]
    fn if_let_else_chain_extends_the_scrutinee() {
        let src = "fn f(m: &Mutex<Option<H>>) {\n    if let Some(h) = m.lock().take() {\n        ok(h);\n    } else {\n        report.join();\n    }\n}\n";
        let (f, spans) = spans_of(src);
        let join_idx = (0..f.tokens.len())
            .find(|&i| matches!(f.tok(i), Tok::Ident(s) if s == "join"))
            .expect("fixture has a join");
        assert!(spans[0].end > join_idx, "else arm is inside the span");
    }

    #[test]
    fn match_scrutinee_spans_all_arms() {
        let src = "fn f(m: &Mutex<State>) -> u32 {\n    match m.lock().phase {\n        Phase::A => other.join(),\n        Phase::B => 0,\n    }\n}\n";
        let (f, spans) = spans_of(src);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].kind, GuardKind::Scrutinee);
        let join_idx = (0..f.tokens.len())
            .find(|&i| matches!(f.tok(i), Tok::Ident(s) if s == "join"))
            .expect("fixture has a join");
        assert!(spans[0].end > join_idx, "arm body is inside the span");
    }

    #[test]
    fn plain_if_condition_guard_dies_at_the_body_brace() {
        // `if x.lock().flag { … }` — unlike `if let`, the condition's
        // temporaries drop before the branch runs.
        let src =
            "fn f(m: &Mutex<St>) {\n    if m.lock().flag {\n        other.join();\n    }\n}\n";
        let (f, spans) = spans_of(src);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].kind, GuardKind::Temporary);
        let join_idx = (0..f.tokens.len())
            .find(|&i| matches!(f.tok(i), Tok::Ident(s) if s == "join"))
            .expect("fixture has a join");
        assert!(spans[0].end <= join_idx, "condition temp dead in the body");
    }

    #[test]
    fn plain_temporary_dies_at_the_semicolon() {
        let src = "fn f(m: &Mutex<Vec<u32>>) {\n    m.lock().push(1);\n    other.join();\n}\n";
        let (f, spans) = spans_of(src);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].kind, GuardKind::Temporary);
        let join_idx = (0..f.tokens.len())
            .find(|&i| matches!(f.tok(i), Tok::Ident(s) if s == "join"))
            .expect("fixture has a join");
        assert!(spans[0].end <= join_idx);
    }

    #[test]
    fn tail_position_temporary_lives_to_block_end() {
        // A tail expression's temporary drops at the end of the block —
        // the subtle case the issue calls out.
        let src = "fn f(m: &Mutex<u32>) -> u32 {\n    *m.lock()\n}\n";
        let (f, spans) = spans_of(src);
        assert_eq!(spans.len(), 1);
        assert!(matches!(f.tok(spans[0].end), Tok::Punct('}')));
    }

    #[test]
    fn closure_argument_lock_is_statement_scoped() {
        let src = "fn f(a: &Actor, m: &Mutex<u32>) {\n    let r = a.wait_until(|| pred(&mut m.lock()));\n    other.join();\n}\n";
        let (f, spans) = spans_of(src);
        assert_eq!(spans.len(), 1);
        let join_idx = (0..f.tokens.len())
            .find(|&i| matches!(f.tok(i), Tok::Ident(s) if s == "join"))
            .expect("fixture has a join");
        assert!(spans[0].end <= join_idx, "guard scoped to its statement");
    }

    #[test]
    fn receiver_names_resolve_chains_and_calls() {
        let src = "fn f(&self) {\n    let a = self.inner.state.lock();\n    drop(a);\n    let b = clock.shard(i).lock();\n}\n";
        let (_, spans) = spans_of(src);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].lock_name, "state");
        assert_eq!(spans[1].lock_name, "shard");
    }

    #[test]
    fn try_lock_guards_are_marked_non_blocking() {
        let src = "fn f(m: &Mutex<u32>) {\n    let Some(g) = m.try_lock() else { return };\n    use_it(&g);\n}\n";
        let (_, spans) = spans_of(src);
        assert_eq!(spans.len(), 1);
        assert!(spans[0].non_blocking);
        assert_eq!(spans[0].kind, GuardKind::LetBound);
        assert_eq!(spans[0].name.as_deref(), Some("g"));
    }

    #[test]
    fn handoff_detection_sees_the_guard_in_the_arguments() {
        let src = "fn f(m: &Mutex<u32>, cv: &Condvar) {\n    let mut st = m.lock();\n    cv.wait(&mut st);\n}\n";
        let (f, spans) = spans_of(src);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name.as_deref(), Some("st"));
        let wait_idx = (0..f.tokens.len())
            .find(|&i| f.method_call_at(i, &["wait"]).is_some())
            .expect("fixture has a wait");
        assert!(call_takes_name(&f, wait_idx, spans[0].name.as_deref()));
        assert!(!call_takes_name(&f, wait_idx, Some("other")));
    }
}
