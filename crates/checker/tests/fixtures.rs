//! Fixture-driven pass tests: for each of the eight passes, one fixture
//! that MUST trip it (positive) and one near-identical fixture that must
//! NOT (negative). The P1–P5 negatives are chosen to be exactly the
//! situations the old CI grep gates got wrong — forbidden tokens inside
//! comments, strings, raw strings, and test modules. The P6–P8 fixtures
//! replay the real bugs that motivated the flow-aware passes, headlined
//! by the PR-7 `if let` drop-join deadlock.

use checker::passes::{
    pass_actor_hygiene, pass_blocking_markers, pass_determinism, pass_lock_lifetime,
    pass_lock_order, pass_nonblocking_engine, pass_panic_ratchet, pass_status_literals,
};
use checker::{Diag, Workspace};

fn diags(
    pass: fn(&Workspace, &mut Vec<Diag>),
    sources: &[(&str, &str)],
    baseline: &str,
) -> Vec<Diag> {
    let ws = Workspace::from_sources(sources, baseline);
    let mut out = Vec::new();
    pass(&ws, &mut out);
    out
}

// ------------------------------------------------------------------
// P1 — non-blocking engine
// ------------------------------------------------------------------

#[test]
fn p1_flags_blocking_and_clock_advance_in_engine() {
    let src = r#"
fn step(e: &Event, a: &Actor) {
    e.wait(a);
    a.advance_ns(10);
}
"#;
    let out = diags(
        pass_nonblocking_engine,
        &[("crates/clmpi/src/engine.rs", src)],
        "",
    );
    assert_eq!(out.len(), 2, "one wait + one advance: {out:?}");
    assert_eq!(out[0].line, 3);
    assert!(out[0].msg.contains(".wait("));
    assert_eq!(out[1].line, 4);
    assert!(out[1].msg.contains("advance_ns"));
}

#[test]
fn p1_ignores_comments_strings_tests_and_other_files() {
    let engine = r##"
//! Docs may say `.wait(` and `advance_until(` freely.
fn step() {
    let msg = "call .recv( later";
    let raw = r#"advance_ns( in a raw string"#;
    park(msg, raw);
}
#[cfg(test)]
mod tests {
    fn t(e: &Event, a: &Actor) { e.wait(a); }
}
"##;
    // The same blocking call in runtime.rs is P2's business, not P1's.
    let runtime = "fn f(e: &Event, a: &Actor) { e.wait(a); } // blocking-api: semantics";
    let out = diags(
        pass_nonblocking_engine,
        &[
            ("crates/clmpi/src/engine.rs", engine),
            ("crates/clmpi/src/runtime.rs", runtime),
        ],
        "",
    );
    assert!(out.is_empty(), "false positives: {out:?}");
}

#[test]
fn p1_allow_marker_with_rationale_suppresses() {
    let src = "fn idle(s: &S, a: &Actor) {\n    s.shared\n        // checker-allow(non-blocking-engine): host-side control-plane wait\n        .wait_labeled(a);\n}\n";
    let out = diags(
        pass_nonblocking_engine,
        &[("crates/clmpi/src/engine.rs", src)],
        "",
    );
    assert!(out.is_empty(), "justified allow-marker suppresses: {out:?}");
}

// ------------------------------------------------------------------
// P2 — blocking-api markers
// ------------------------------------------------------------------

#[test]
fn p2_flags_unmarked_and_empty_rationale_blocking_calls() {
    let src = r#"
fn f(e: &Event, a: &Actor) {
    e.wait(a);
    e.recv(a); // blocking-api:
}
"#;
    let out = diags(
        pass_blocking_markers,
        &[("crates/clmpi/src/runtime.rs", src)],
        "",
    );
    assert_eq!(out.len(), 2, "{out:?}");
    assert!(out[0].msg.contains("without a"), "{}", out[0].msg);
    assert!(out[1].msg.contains("empty rationale"), "{}", out[1].msg);
}

#[test]
fn p2_accepts_markers_anywhere_in_the_statement() {
    let src = r#"
fn f(s: &Slot, e: &Event, a: &Actor) {
    e.wait(a); // blocking-api: MPI_Send semantics
    // blocking-api: the whole point of waiting a send request.
    let out = s
        .slot
        .wait_labeled(a);
    drop(out);
}
#[cfg(test)]
mod tests {
    fn t(e: &Event, a: &Actor) { e.wait(a); }
}
"#;
    let out = diags(
        pass_blocking_markers,
        &[("crates/clmpi/src/runtime.rs", src)],
        "",
    );
    assert!(out.is_empty(), "{out:?}");
}

#[test]
fn p2_marker_inside_a_string_does_not_count() {
    let src = r#"fn f(e: &Event, a: &Actor) { log("blocking-api: fake"); e.wait(a); }"#;
    let out = diags(
        pass_blocking_markers,
        &[("crates/clmpi/src/runtime.rs", src)],
        "",
    );
    assert_eq!(out.len(), 1, "string content is not a marker: {out:?}");
}

// ------------------------------------------------------------------
// P3 — panic-path ratchet
// ------------------------------------------------------------------

const RATCHET_SRC: &str = r#"
fn f(x: Option<u32>) -> u32 {
    // unwrap( in a comment is not counted
    let label = "panic! in a string is not counted";
    drop(label);
    x.unwrap()
}
fn g(x: Option<u32>) -> u32 { x.expect("ctx") }
fn h() { panic!("boom"); }
"#;

#[test]
fn p3_counts_match_and_ratchet_up_fails() {
    let files = [("crates/simtime/src/a.rs", RATCHET_SRC)];
    // Exact baseline: clean.
    let exact = "[simtime]\nunwrap = 1\nexpect = 1\npanic = 1\n";
    assert!(diags(pass_panic_ratchet, &files, exact).is_empty());
    // One fewer allowed unwrap: the new unwrap is a ratchet-up error.
    let tighter = "[simtime]\nunwrap = 0\nexpect = 1\npanic = 1\n";
    let out = diags(pass_panic_ratchet, &files, tighter);
    assert_eq!(out.len(), 1, "{out:?}");
    assert!(out[0].msg.contains("ratcheted UP"), "{}", out[0].msg);
}

#[test]
fn p3_improvement_must_be_locked_in() {
    let files = [("crates/simtime/src/a.rs", RATCHET_SRC)];
    let looser = "[simtime]\nunwrap = 3\nexpect = 1\npanic = 1\n";
    let out = diags(pass_panic_ratchet, &files, looser);
    assert_eq!(out.len(), 1, "{out:?}");
    assert!(out[0].msg.contains("--write-baseline"), "{}", out[0].msg);
}

#[test]
fn p3_malformed_baseline_is_a_diagnostic() {
    let files = [("crates/simtime/src/a.rs", RATCHET_SRC)];
    let out = diags(pass_panic_ratchet, &files, "[simtime]\nunwrap = lots\n");
    assert_eq!(out.len(), 1, "{out:?}");
    assert_eq!(out[0].file, "crates/checker/baseline.toml");
}

#[test]
fn p3_unwrap_or_and_should_panic_are_not_panic_paths() {
    let src = r#"
fn f(x: Option<u32>) -> u32 { x.unwrap_or(0).max(x.unwrap_or_else(|| 1)) }
#[should_panic(expected = "boom")]
fn t() {}
"#;
    let files = [("crates/simtime/src/a.rs", src)];
    let zero = "[simtime]\nunwrap = 0\nexpect = 0\npanic = 0\n";
    assert!(diags(pass_panic_ratchet, &files, zero).is_empty());
}

// ------------------------------------------------------------------
// P4 — determinism
// ------------------------------------------------------------------

#[test]
fn p4_flags_wallclock_sleep_and_unordered_collections() {
    let src = r#"
use std::collections::HashMap;
fn f() {
    let t = std::time::Instant::now();
    std::thread::sleep(d);
    drop(t);
}
"#;
    let out = diags(pass_determinism, &[("crates/simnet/src/a.rs", src)], "");
    let msgs: Vec<&str> = out.iter().map(|d| d.msg.as_str()).collect();
    assert_eq!(out.len(), 3, "{out:?}");
    assert!(msgs.iter().any(|m| m.contains("HashMap")));
    assert!(msgs.iter().any(|m| m.contains("Instant")));
    assert!(msgs.iter().any(|m| m.contains("thread::sleep")));
}

#[test]
fn p4_allows_btreemap_justified_hashmap_and_test_code() {
    let src = r#"
use std::collections::BTreeMap;
// checker-allow(determinism): keyed access only, never iterated.
use std::collections::HashMap;
struct S {
    // checker-allow(determinism): looked up by id; order never observed,
    // as this multi-line justification explains at length.
    index: HashMap<u64, u32>,
    ordered: BTreeMap<u64, u32>,
}
#[cfg(test)]
mod tests {
    use std::collections::HashSet;
    fn t() { let _s: HashSet<u32> = HashSet::new(); }
}
"#;
    let out = diags(pass_determinism, &[("crates/simtime/src/a.rs", src)], "");
    assert!(out.is_empty(), "{out:?}");
}

#[test]
fn p4_unjustified_allow_marker_does_not_suppress() {
    let src = "use std::collections::HashMap; // checker-allow(determinism):\n";
    let out = diags(pass_determinism, &[("crates/simtime/src/a.rs", src)], "");
    assert_eq!(out.len(), 1, "empty rationale must not suppress: {out:?}");
}

#[test]
fn p4_non_thread_sleep_ident_is_fine() {
    // simnet docs talk about actors "sleeping"; only `thread::sleep` is
    // the real-time kind.
    let src = "fn sleep_until(t: SimNs) { clock.sleep_until(t); } // fn named sleep_until";
    let out = diags(pass_determinism, &[("crates/simtime/src/a.rs", src)], "");
    assert!(out.is_empty(), "{out:?}");
}

// ------------------------------------------------------------------
// P5 — status literals
// ------------------------------------------------------------------

#[test]
fn p5_flags_raw_status_literals_in_all_code_paths() {
    let src = r#"
fn f(e: &Event) {
    e.fail(5, -1100);
    e.fail(9, -14i32);
}
"#;
    let out = diags(
        pass_status_literals,
        &[("crates/minicl/src/event.rs", src)],
        "",
    );
    assert_eq!(out.len(), 2, "{out:?}");
    assert!(
        out[0].msg.contains("CL_MPI_TRANSFER_ERROR"),
        "{}",
        out[0].msg
    );
    assert!(
        out[1]
            .msg
            .contains("EXEC_STATUS_ERROR_FOR_EVENTS_IN_WAIT_LIST"),
        "{}",
        out[1].msg
    );
}

#[test]
fn p5_ignores_strings_comments_other_values_and_status_rs() {
    let src = r#"
// -1100 in a comment
fn f(e: &Event, c1: Option<i32>) {
    assert_eq!(c1, Some(X), "root failure is -1100");
    e.fail(43, -42);
    let window = 14; // positive 14 is not a status code
    drop(window);
}
"#;
    let defs = "pub const CL_MPI_TRANSFER_ERROR: i32 = -1100;\npub const E: i32 = -14;\n";
    let out = diags(
        pass_status_literals,
        &[
            ("crates/clmpi/tests/engine.rs", src),
            ("crates/minicl/src/status.rs", defs),
        ],
        "",
    );
    assert!(out.is_empty(), "{out:?}");
}

#[test]
fn p5_separator_and_suffix_forms_still_match() {
    let src = "fn f(e: &Event) { e.fail(1, -1_100); }";
    let out = diags(pass_status_literals, &[("crates/clmpi/src/a.rs", src)], "");
    assert_eq!(out.len(), 1, "`-1_100` is still -1100: {out:?}");
}

// ------------------------------------------------------------------
// P3 — unreachable! and allow-marker ratchets (PR 8 extensions)
// ------------------------------------------------------------------

#[test]
fn p3_unreachable_is_ratcheted_like_panic() {
    let src = "fn f(x: u32) -> u32 {\n    match x {\n        0 => 1,\n        _ => unreachable!(\"no\"),\n    }\n}\n";
    let files = [("crates/simtime/src/a.rs", src)];
    let exact = "[simtime]\nunwrap = 0\nexpect = 0\npanic = 0\nunreachable = 1\n";
    assert!(diags(pass_panic_ratchet, &files, exact).is_empty());
    let tighter = "[simtime]\nunwrap = 0\nexpect = 0\npanic = 0\nunreachable = 0\n";
    let out = diags(pass_panic_ratchet, &files, tighter);
    assert_eq!(out.len(), 1, "{out:?}");
    assert!(out[0].msg.contains("`unreachable!`"), "{}", out[0].msg);
}

#[test]
fn p3_new_allow_marker_trips_the_ratchet() {
    let src = "// checker-allow(lock-lifetime): justified elsewhere\nfn f() {}\n";
    let files = [("crates/simtime/src/a.rs", src)];
    let pinned = "[simtime]\n\n[allow]\nlock-lifetime = 1\n";
    assert!(diags(pass_panic_ratchet, &files, pinned).is_empty());
    let out = diags(pass_panic_ratchet, &files, "[simtime]\n");
    assert_eq!(out.len(), 1, "{out:?}");
    assert!(
        out[0].msg.contains("checker-allow(lock-lifetime)"),
        "{}",
        out[0].msg
    );
    assert!(out[0].msg.contains("ratcheted UP"), "{}", out[0].msg);
}

// ------------------------------------------------------------------
// P6 — lock-lifetime
// ------------------------------------------------------------------

/// The PR-7 deadlock, verbatim in shape: the `if let` scrutinee keeps
/// the `handle` guard live across `reap()` (which joins the worker
/// thread), so the worker's own drop path deadlocks against it. This
/// fixture MUST fail the pass — it is the bug the pass exists for.
#[test]
fn p6_pr7_if_let_drop_join_deadlock_is_caught() {
    let src = r#"
impl Drop for Engine {
    fn drop(&mut self) {
        if let Some(h) = self.handle.lock().take() {
            h.reap();
        }
    }
}
"#;
    let out = diags(
        pass_lock_lifetime,
        &[("crates/clmpi/src/engine.rs", src)],
        "",
    );
    assert_eq!(out.len(), 1, "the PR-7 shape must be flagged: {out:?}");
    assert!(out[0].msg.contains("scrutinee"), "{}", out[0].msg);
    assert!(
        out[0].msg.contains("`reap`(") || out[0].msg.contains("reap("),
        "{}",
        out[0].msg
    );
}

/// The 04d47ed fix pattern: take the handle out of the mutex first.
/// The guard is a temporary that dies at the `;` — no finding.
#[test]
fn p6_take_then_join_pattern_is_clean() {
    let src = r#"
impl Drop for Engine {
    fn drop(&mut self) {
        let h = self.handle.lock().take();
        if let Some(h) = h {
            h.reap();
        }
    }
}
"#;
    let out = diags(
        pass_lock_lifetime,
        &[("crates/clmpi/src/engine.rs", src)],
        "",
    );
    assert!(out.is_empty(), "the fixed pattern is clean: {out:?}");
}

#[test]
fn p6_let_bound_guard_across_blocking_and_nested_lock() {
    let src = r#"
fn f(&self) {
    let st = self.state.lock();
    self.chan.recv();
    self.other.lock().push(1);
    drop(st);
}
"#;
    let out = diags(pass_lock_lifetime, &[("crates/simtime/src/a.rs", src)], "");
    assert_eq!(out.len(), 2, "one recv + one nested lock: {out:?}");
    assert!(out
        .iter()
        .any(|d| d.msg.contains("`recv`(") || d.msg.contains("recv(")));
    assert!(out.iter().any(|d| d.msg.contains("nested `.lock()`")));
}

#[test]
fn p6_drop_before_blocking_and_condvar_handoff_are_clean() {
    let src = r#"
fn f(&self) {
    let st = self.state.lock();
    drop(st);
    self.chan.recv();
}
fn waiter(&self) {
    let mut st = self.state.lock();
    while !st.ready {
        st = self.cv.wait(st);
    }
}
fn names(&self) -> String {
    let st = self.state.lock();
    st.labels.join(", ")
}
"#;
    let out = diags(pass_lock_lifetime, &[("crates/simtime/src/a.rs", src)], "");
    assert!(
        out.is_empty(),
        "drop-first, guard handoff, and string join are clean: {out:?}"
    );
}

#[test]
fn p6_allow_marker_with_rationale_suppresses() {
    let src = r#"
fn pump(&self) {
    // checker-allow(lock-lifetime): defer serializes the grant order;
    // cell is a per-job leaf lock.
    let q = self.defer.lock();
    for j in q.iter() {
        j.cell.lock().replace(1);
    }
}
"#;
    let out = diags(pass_lock_lifetime, &[("crates/clmpi/src/a.rs", src)], "");
    assert!(out.is_empty(), "justified allow-marker suppresses: {out:?}");
}

#[test]
fn p6_test_code_is_exempt() {
    let src = r#"
#[cfg(test)]
mod tests {
    fn t(&self) {
        let st = self.state.lock();
        self.chan.recv();
        drop(st);
    }
}
"#;
    let out = diags(pass_lock_lifetime, &[("crates/simtime/src/a.rs", src)], "");
    assert!(out.is_empty(), "{out:?}");
}

// ------------------------------------------------------------------
// P7 — lock-order
// ------------------------------------------------------------------

#[test]
fn p7_opposite_acquisition_orders_across_files_cycle() {
    let a = "fn f(&self) {\n    let g = self.alpha.lock();\n    self.beta.lock().push(1);\n}\n";
    let b = "fn h(&self) {\n    let g = self.beta.lock();\n    self.alpha.lock().push(1);\n}\n";
    let out = diags(
        pass_lock_order,
        &[
            ("crates/simtime/src/a.rs", a),
            ("crates/simtime/src/b.rs", b),
        ],
        "",
    );
    assert_eq!(out.len(), 1, "{out:?}");
    assert!(out[0].msg.contains("simtime:alpha"), "{}", out[0].msg);
    assert!(out[0].msg.contains("simtime:beta"), "{}", out[0].msg);
}

#[test]
fn p7_cross_function_cycle_through_a_direct_call() {
    let src = r#"
fn take_beta(&self) {
    self.beta.lock().push(1);
}
fn f(&self) {
    let g = self.alpha.lock();
    self.take_beta();
}
fn h(&self) {
    let g = self.beta.lock();
    self.alpha.lock().push(1);
}
"#;
    let out = diags(pass_lock_order, &[("crates/simtime/src/a.rs", src)], "");
    assert_eq!(out.len(), 1, "{out:?}");
    assert!(out[0].msg.contains("via take_beta()"), "{}", out[0].msg);
}

#[test]
fn p7_consistent_order_and_try_lock_are_clean() {
    let src = r#"
fn f(&self) {
    let g = self.alpha.lock();
    self.beta.lock().push(1);
}
fn h(&self) {
    let g = self.beta.lock();
    if let Some(a) = self.alpha.try_lock() {
        use_it(a);
    }
}
"#;
    let out = diags(pass_lock_order, &[("crates/simtime/src/a.rs", src)], "");
    assert!(out.is_empty(), "consistent order + try_lock: {out:?}");
}

#[test]
fn p7_allow_marker_removes_the_edge() {
    let src = r#"
fn f(&self) {
    let g = self.alpha.lock();
    // checker-allow(lock-order): alpha strictly outranks beta; the h()
    // path runs only at shutdown when f() can no longer be entered.
    self.beta.lock().push(1);
}
fn h(&self) {
    let g = self.beta.lock();
    self.alpha.lock().push(1);
}
"#;
    let out = diags(pass_lock_order, &[("crates/simtime/src/a.rs", src)], "");
    assert!(out.is_empty(), "annotated edge is removed: {out:?}");
}

// ------------------------------------------------------------------
// P8 — actor hygiene
// ------------------------------------------------------------------

#[test]
fn p8_blocking_and_thread_spawn_in_machine_bodies() {
    let src = r#"
impl SimActor for QueueCore {
    fn poll(&mut self, now: SimNs, actor: &Actor) -> MachineStep {
        self.chan.recv();
        MachineStep::Pending
    }
    fn on_wake(&mut self, now: SimNs, actor: &Actor) -> MachineStep {
        std::thread::spawn(move || {});
        MachineStep::Done
    }
}
impl EngineOp for Copy2D {
    fn step(&mut self, now: SimNs, actor: &Actor) -> Step {
        self.event.wait(actor);
        Step::Done
    }
}
"#;
    let out = diags(
        pass_actor_hygiene,
        &[("crates/minicl/src/queue.rs", src)],
        "",
    );
    assert_eq!(out.len(), 3, "{out:?}");
    assert!(out
        .iter()
        .any(|d| d.msg.contains("`recv`(") || d.msg.contains("recv(")));
    assert!(out.iter().any(|d| d.msg.contains("thread::spawn")));
    assert!(out
        .iter()
        .any(|d| d.msg.contains("`wait`(") || d.msg.contains("wait(")));
}

#[test]
fn p8_resumable_machine_and_non_machine_code_are_clean() {
    let src = r#"
impl SimActor for QueueCore {
    fn poll(&mut self, now: SimNs, actor: &Actor) -> MachineStep {
        // Accessors that merely *name* wait lists are fine.
        match Event::poll_wait_list(cmd.wait_list()) {
            Deps::Ready => MachineStep::Pending,
            Deps::Blocked(t) => MachineStep::Pending,
        }
    }
}
impl QueueCore {
    // Not a machine body: the control plane may block (P2 governs it).
    fn drain(&self, actor: &Actor) {
        self.done.recv();
    }
}
"#;
    let out = diags(
        pass_actor_hygiene,
        &[("crates/minicl/src/queue.rs", src)],
        "",
    );
    assert!(out.is_empty(), "{out:?}");
}

#[test]
fn p8_allow_marker_and_test_impls_are_exempt() {
    let live = r#"
impl SimActor for Probe {
    fn poll(&mut self, now: SimNs, actor: &Actor) -> MachineStep {
        // checker-allow(actor-hygiene): diagnostic probe; the harness
        // guarantees a dedicated shard for it.
        self.chan.recv();
        MachineStep::Pending
    }
}
#[cfg(test)]
mod tests {
    impl SimActor for Stuck {
        fn poll(&mut self, now: SimNs, actor: &Actor) -> MachineStep {
            self.chan.recv(); // deliberately stuck fixture
            MachineStep::Pending
        }
    }
}
"#;
    let out = diags(pass_actor_hygiene, &[("crates/simtime/src/a.rs", live)], "");
    assert!(out.is_empty(), "{out:?}");
}
