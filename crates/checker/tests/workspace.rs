//! Tier-1 integration: run all eight passes over the *real* workspace.
//!
//! This is the same check `cargo run -p checker` (the CI gate) performs;
//! having it as a test means plain `cargo test` cannot pass while an
//! invariant is broken or the panic-path ratchet is stale.

use checker::{run_all, workspace_root, Workspace};

#[test]
fn workspace_satisfies_all_static_invariants() {
    let ws = Workspace::load(&workspace_root()).expect("workspace sources readable");
    assert!(
        ws.files.len() > 30,
        "sanity: the five library crates lex to plenty of files, got {}",
        ws.files.len()
    );
    let diags = run_all(&ws);
    assert!(
        diags.is_empty(),
        "static invariant violations:\n{}",
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
