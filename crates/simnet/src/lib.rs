//! # simnet — simulated cluster interconnect
//!
//! Timing substrate for the clMPI reproduction. Substitutes for the two
//! physical fabrics of the paper's Table I (Gigabit Ethernet on "Cichlid",
//! InfiniBand DDR via IPoIB on "RICC") with an analytic
//! latency/bandwidth/overhead cost model and **reservation-based
//! contention**: a NIC direction is a serialized timeline, so concurrent
//! transfers from one node queue up exactly as they would on hardware.
//!
//! Design choice: reservations are *bookkeeping*, not blocking. Reserving a
//! transfer returns its `(start, end, arrival)` virtual instants
//! immediately; the requesting actor decides whether to sleep until
//! injection completes (blocking send), until arrival (synchronous
//! receive), or not at all (asynchronous DMA-style progress, which is what
//! lets `MPI_Isend` proceed with no host involvement — the property the
//! paper's clMPI relies on).

mod cluster;
mod fault;
mod link;
mod mailbox;

pub use cluster::{ClusterSpec, CxlSpec, Fabric, FabricClass, NodeId};
pub use fault::{
    DropReason, FaultCounts, FaultInjector, FaultOutcome, FaultPlan, FaultPlanError, NodeDownWindow,
};
pub use link::{reserve_pair, Link, LinkSpec, Reservation};
pub use mailbox::{Envelope, Mailbox};

#[cfg(test)]
mod proptests;
