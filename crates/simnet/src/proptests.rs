//! Property-based tests for the link/fabric reservation invariants.

use proptest::prelude::*;

use crate::{ClusterSpec, Fabric, Link, LinkSpec};
use simtime::SimClock;

fn arb_spec() -> impl Strategy<Value = LinkSpec> {
    (1u64..1_000_000, 1.0e6f64..1.0e10, 0u64..1_000_000).prop_map(
        |(latency_ns, bandwidth_bps, per_msg_overhead_ns)| LinkSpec {
            latency_ns,
            bandwidth_bps,
            per_msg_overhead_ns,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Reservations on one link never overlap and never move backwards.
    #[test]
    fn link_reservations_are_disjoint_and_monotone(
        spec in arb_spec(),
        requests in proptest::collection::vec((0usize..1 << 24, 0u64..1_000_000_000), 1..40),
    ) {
        let clock = SimClock::new();
        let link = Link::new(clock, spec);
        let mut prev_end = 0u64;
        for (bytes, earliest) in requests {
            let r = link.reserve(bytes, earliest);
            prop_assert!(r.start >= earliest);
            prop_assert!(r.start >= prev_end, "FIFO: starts after previous end");
            prop_assert_eq!(r.end, r.start + spec.injection_ns(bytes));
            prop_assert_eq!(r.arrival, r.end + spec.latency_ns);
            prev_end = r.end;
        }
    }

    /// Injection time is monotone in message size.
    #[test]
    fn injection_monotone_in_bytes(spec in arb_spec(), a in 0usize..1 << 26, b in 0usize..1 << 26) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(spec.injection_ns(lo) <= spec.injection_ns(hi));
    }

    /// Sustained bandwidth never exceeds the link's peak bandwidth.
    #[test]
    fn sustained_bw_bounded_by_peak(spec in arb_spec(), bytes in 1usize..1 << 26) {
        let s = spec.sustained_bps(bytes);
        prop_assert!(s <= spec.bandwidth_bps * 1.0001);
        prop_assert!(s > 0.0);
    }

    /// In a fabric, transfers between disjoint node pairs never delay one
    /// another, while transfers sharing a tx or rx endpoint serialize.
    #[test]
    fn fabric_contention_is_per_endpoint(
        bytes in 1usize..1 << 22,
    ) {
        let clock = SimClock::new();
        let f = Fabric::new(clock, ClusterSpec::ricc(), 4);
        let r01 = f.reserve(0, 1, bytes, 0);
        let r23 = f.reserve(2, 3, bytes, 0);
        prop_assert_eq!(r01.start, 0);
        prop_assert_eq!(r23.start, 0);
        let r02 = f.reserve(0, 2, bytes, 0); // shares tx with r01
        prop_assert_eq!(r02.start, r01.end);
        let r31 = f.reserve(3, 1, bytes, 0); // shares rx with r01
        prop_assert_eq!(r31.start, r01.end);
    }
}
