//! Property-style tests for the link/fabric reservation invariants,
//! driven by seeded [`XorShift64`] input loops (deterministic, no external
//! test-generation dependency).

use crate::{ClusterSpec, Fabric, FaultPlan, Link, LinkSpec};
use simtime::{SimClock, XorShift64};

fn arb_spec(rng: &mut XorShift64) -> LinkSpec {
    LinkSpec {
        latency_ns: rng.gen_range_u64(1, 1_000_000),
        bandwidth_bps: 1.0e6 + rng.next_f64() * (1.0e10 - 1.0e6),
        per_msg_overhead_ns: rng.gen_range_u64(0, 1_000_000),
    }
}

/// Reservations on one link never overlap and never move backwards.
#[test]
fn link_reservations_are_disjoint_and_monotone() {
    for case in 0..64u64 {
        let mut rng = XorShift64::new(0x11_0000 + case);
        let spec = arb_spec(&mut rng);
        let clock = SimClock::new();
        let link = Link::new(clock, spec);
        let mut prev_end = 0u64;
        for _ in 0..rng.gen_range_usize(1, 40) {
            let bytes = rng.gen_range_usize(0, 1 << 24);
            let earliest = rng.gen_range_u64(0, 1_000_000_000);
            let r = link.reserve(bytes, earliest);
            assert!(r.start >= earliest, "case {case}");
            assert!(
                r.start >= prev_end,
                "case {case}: FIFO start after previous end"
            );
            assert_eq!(r.end, r.start + spec.injection_ns(bytes), "case {case}");
            assert_eq!(r.arrival, r.end + spec.latency_ns, "case {case}");
            prev_end = r.end;
        }
    }
}

/// Injection time is monotone in message size.
#[test]
fn injection_monotone_in_bytes() {
    for case in 0..64u64 {
        let mut rng = XorShift64::new(0x22_0000 + case);
        let spec = arb_spec(&mut rng);
        let a = rng.gen_range_usize(0, 1 << 26);
        let b = rng.gen_range_usize(0, 1 << 26);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        assert!(
            spec.injection_ns(lo) <= spec.injection_ns(hi),
            "case {case}: {lo} vs {hi}"
        );
    }
}

/// Sustained bandwidth never exceeds the link's peak bandwidth.
#[test]
fn sustained_bw_bounded_by_peak() {
    for case in 0..64u64 {
        let mut rng = XorShift64::new(0x33_0000 + case);
        let spec = arb_spec(&mut rng);
        let bytes = rng.gen_range_usize(1, 1 << 26);
        let s = spec.sustained_bps(bytes);
        assert!(s <= spec.bandwidth_bps * 1.0001, "case {case}");
        assert!(s > 0.0, "case {case}");
    }
}

/// In a fabric, transfers between disjoint node pairs never delay one
/// another, while transfers sharing a tx or rx endpoint serialize.
#[test]
fn fabric_contention_is_per_endpoint() {
    for case in 0..16u64 {
        let mut rng = XorShift64::new(0x44_0000 + case);
        let bytes = rng.gen_range_usize(1, 1 << 22);
        let clock = SimClock::new();
        let f = Fabric::new(clock, ClusterSpec::ricc(), 4);
        let r01 = f.reserve(0, 1, bytes, 0);
        let r23 = f.reserve(2, 3, bytes, 0);
        assert_eq!(r01.start, 0, "case {case}");
        assert_eq!(r23.start, 0, "case {case}");
        let r02 = f.reserve(0, 2, bytes, 0); // shares tx with r01
        assert_eq!(r02.start, r01.end, "case {case}");
        let r31 = f.reserve(3, 1, bytes, 0); // shares rx with r01
        assert_eq!(r31.start, r01.end, "case {case}");
    }
}

/// A fabric under a seeded fault plan hands out identical fate sequences
/// across runs, and a `FaultPlan::none` fabric reports no fault machinery.
#[test]
fn fabric_fault_decisions_replay_exactly() {
    let run = || {
        let clock = SimClock::new();
        let f = Fabric::with_faults(
            clock,
            ClusterSpec::cichlid(),
            4,
            FaultPlan::drops(77, 0.2).with_jitter(10_000),
        );
        let mut fates = Vec::new();
        for k in 0..200u64 {
            fates.push(f.fault_decision(0, 1, (k % 5) as i32, k * 1_000));
            fates.push(f.fault_decision(2, 3, 1, k * 1_000));
        }
        (fates, f.fault_counts())
    };
    let (fates_a, counts_a) = run();
    let (fates_b, counts_b) = run();
    assert_eq!(fates_a, fates_b);
    assert_eq!(counts_a, counts_b);
    assert!(counts_a.dropped() > 0, "20% drops over 400 draws");

    let clean = Fabric::new(SimClock::new(), ClusterSpec::cichlid(), 2);
    assert!(!clean.has_faults());
    assert_eq!(clean.fault_counts(), crate::FaultCounts::default());
}
