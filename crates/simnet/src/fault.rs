//! Deterministic link-fault injection in virtual time.
//!
//! A [`FaultPlan`] describes the failure behaviour of a link: a seeded
//! message-drop probability, bounded latency jitter, and link-down
//! windows. A [`FaultInjector`] attached to a link turns the plan into
//! per-message [`FaultOutcome`]s.
//!
//! **Determinism.** The fate of a message is a pure function of
//! `(plan seed, link salt, src, dst, tag, k)` where `k` counts messages of
//! that flow: the k-th send of a flow always meets the same fate under the
//! same plan, regardless of thread scheduling. Runs with equal seeds are
//! therefore exactly replayable — drops, jitter and retries land at the
//! same virtual instants every time.
//!
//! **Loss visibility.** Reservations are bookkeeping, so the sending side
//! learns a message's fate at injection time (think of it as a link-layer
//! NACK); higher layers (the clMPI `RetryPolicy`) use that to model
//! retransmission without an explicit ack protocol. Dropped messages still
//! consume sender-side injection time, like real lost packets.
//!
//! **Node kills.** Beyond per-message link faults, a plan can schedule
//! whole-node failures ([`FaultPlan::with_node_down`], permanent, and
//! [`FaultPlan::with_node_down_window`], transient). Every message to
//! *or* from a dead node resolves deterministically as
//! [`DropReason::NodeDown`] — including control-plane tags a
//! `tag_floor` would otherwise shield, because a dead process answers
//! on no channel. Higher layers (minimpi's ULFM-style surface) classify
//! the resulting timeouts as process failures.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::NodeId;
use simtime::plock::Mutex;
use simtime::{SimNs, XorShift64};

/// Failure behaviour of a link, in virtual time. [`FaultPlan::none`] is
/// the default everywhere and is guaranteed to leave timing and delivery
/// bit-identical to a build without fault injection.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed of the deterministic fault stream.
    pub seed: u64,
    /// Probability that a message is silently dropped, in `[0, 1]`.
    pub drop_probability: f64,
    /// Maximum extra one-way latency (uniform in `[0, jitter_ns]`) added
    /// per delivered message.
    pub jitter_ns: SimNs,
    /// Half-open `[from, until)` virtual-time windows during which the
    /// link is down: every message injected inside one is dropped.
    pub down_windows: Vec<(SimNs, SimNs)>,
    /// If set, only messages with `tag >= tag_floor` are subject to
    /// faults. Lets a plan target the bulk-data plane (e.g. clMPI transfer
    /// tags) while control traffic (barriers, reductions) stays reliable,
    /// mirroring a transport with protected control channels. Node-down
    /// schedules ignore the floor: a dead process answers on no channel.
    pub tag_floor: Option<i32>,
    /// Half-open `[from, until)` windows during which a whole node is
    /// dead: every message to or from it is dropped, regardless of
    /// `tag_floor`. Permanent kills use `until = SimNs::MAX`.
    pub node_down: Vec<NodeDownWindow>,
}

/// One scheduled node failure: node `node` is dead during `[from, until)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeDownWindow {
    /// The node being killed.
    pub node: NodeId,
    /// Virtual instant the node dies.
    pub from: SimNs,
    /// Virtual instant the node comes back (`SimNs::MAX` = never).
    pub until: SimNs,
}

/// Rejected [`FaultPlan`] construction input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultPlanError {
    /// A `[from, until)` window with `until <= from` selects nothing.
    EmptyWindow { from: SimNs, until: SimNs },
}

impl std::fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultPlanError::EmptyWindow { from, until } => {
                write!(f, "empty fault window {from}..{until}")
            }
        }
    }
}

impl std::error::Error for FaultPlanError {}

impl FaultPlan {
    /// The perfect fabric: nothing dropped, no jitter, never down.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            drop_probability: 0.0,
            jitter_ns: 0,
            down_windows: Vec::new(),
            tag_floor: None,
            node_down: Vec::new(),
        }
    }

    /// A plan that drops each message with probability `p`, seeded.
    pub fn drops(seed: u64, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "drop probability {p} outside [0,1]"
        );
        FaultPlan {
            seed,
            drop_probability: p,
            ..Self::none()
        }
    }

    /// Add uniform `[0, jitter_ns]` latency jitter per delivered message.
    pub fn with_jitter(mut self, jitter_ns: SimNs) -> Self {
        self.jitter_ns = jitter_ns;
        self
    }

    /// Add a `[from, until)` link-down window. An empty window
    /// (`until <= from`) selects no instant and is a documented no-op —
    /// library construction never aborts the process; use
    /// [`FaultPlan::try_down_window`] to surface the mistake instead.
    pub fn with_down_window(mut self, from: SimNs, until: SimNs) -> Self {
        if until > from {
            self.down_windows.push((from, until));
        }
        self
    }

    /// [`FaultPlan::with_down_window`] that rejects an empty window with
    /// a [`FaultPlanError`] instead of silently ignoring it.
    pub fn try_down_window(self, from: SimNs, until: SimNs) -> Result<Self, FaultPlanError> {
        if until <= from {
            return Err(FaultPlanError::EmptyWindow { from, until });
        }
        Ok(self.with_down_window(from, until))
    }

    /// Kill `node` permanently at virtual instant `at_ns`: from then on
    /// every message to or from it is dropped with
    /// [`DropReason::NodeDown`], regardless of any `tag_floor`.
    pub fn with_node_down(mut self, node: NodeId, at_ns: SimNs) -> Self {
        self.node_down.push(NodeDownWindow {
            node,
            from: at_ns,
            until: SimNs::MAX,
        });
        self
    }

    /// Kill `node` for the `[from, until)` window only (a transient
    /// process failure: crash-and-restart). An empty window is a
    /// documented no-op, like [`FaultPlan::with_down_window`]; use
    /// [`FaultPlan::try_node_down_window`] to reject it.
    pub fn with_node_down_window(mut self, node: NodeId, from: SimNs, until: SimNs) -> Self {
        if until > from {
            self.node_down.push(NodeDownWindow { node, from, until });
        }
        self
    }

    /// [`FaultPlan::with_node_down_window`] that rejects an empty window
    /// with a [`FaultPlanError`].
    pub fn try_node_down_window(
        self,
        node: NodeId,
        from: SimNs,
        until: SimNs,
    ) -> Result<Self, FaultPlanError> {
        if until <= from {
            return Err(FaultPlanError::EmptyWindow { from, until });
        }
        Ok(self.with_node_down_window(node, from, until))
    }

    /// Restrict faults to messages with `tag >= floor`.
    pub fn with_tag_floor(mut self, floor: i32) -> Self {
        self.tag_floor = Some(floor);
        self
    }

    /// True if this plan can never perturb anything.
    pub fn is_none(&self) -> bool {
        self.drop_probability == 0.0
            && self.jitter_ns == 0
            && self.down_windows.is_empty()
            && self.node_down.is_empty()
    }

    /// Whether messages with `tag` fall under this plan.
    pub fn applies_to_tag(&self, tag: i32) -> bool {
        self.tag_floor.is_none_or(|floor| tag >= floor)
    }

    fn down_at(&self, t: SimNs) -> bool {
        self.down_windows.iter().any(|&(a, b)| t >= a && t < b)
    }

    /// True if `node` is scheduled dead at virtual instant `t`.
    pub fn node_down_at(&self, node: NodeId, t: SimNs) -> bool {
        self.node_down
            .iter()
            .any(|w| w.node == node && t >= w.from && t < w.until)
    }

    /// True if `node` is scheduled dead at any instant of `[from, until)`
    /// (crash-consistency checks: does a kill interrupt this interval?).
    pub fn node_down_in(&self, node: NodeId, from: SimNs, until: SimNs) -> bool {
        self.node_down
            .iter()
            .any(|w| w.node == node && w.from < until && from < w.until)
    }

    /// The earliest scheduled death of `node`, if any (`from` of its
    /// first window in time order).
    pub fn node_down_since(&self, node: NodeId) -> Option<SimNs> {
        self.node_down
            .iter()
            .filter(|w| w.node == node)
            .map(|w| w.from)
            .min()
    }
}

/// Why a message was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// The seeded Bernoulli draw came up lossy.
    Random,
    /// The injection start fell inside a link-down window.
    LinkDown,
    /// The source or destination node was dead at injection start.
    NodeDown,
}

/// The fate the injector assigned to one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOutcome {
    /// Delivered, with this much extra one-way latency (0 without jitter).
    Deliver { extra_latency_ns: SimNs },
    /// Never arrives. Sender-side link time is still consumed.
    Drop(DropReason),
}

impl FaultOutcome {
    /// True for either drop reason.
    pub fn is_drop(&self) -> bool {
        matches!(self, FaultOutcome::Drop(_))
    }
}

/// Aggregate fault counters, readable at any time (e.g. for stats
/// reports or assertions that retries actually happened).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Messages delivered (possibly jittered).
    pub delivered: u64,
    /// Messages dropped by the Bernoulli draw.
    pub dropped_random: u64,
    /// Messages dropped by a link-down window.
    pub dropped_down: u64,
    /// Messages dropped because an endpoint node was dead.
    pub dropped_node: u64,
    /// Total extra latency injected, ns.
    pub jitter_ns_total: u64,
}

impl FaultCounts {
    /// Total dropped messages, all reasons.
    pub fn dropped(&self) -> u64 {
        self.dropped_random + self.dropped_down + self.dropped_node
    }
}

/// Per-link fault decision engine. See the module docs for the
/// determinism contract.
pub struct FaultInjector {
    plan: FaultPlan,
    salt: u64,
    /// Per-(src, dst, tag) message counters: the flow position `k` feeds
    /// the pure decision function (the drop decision is pure in
    /// (plan, salt, key, k), so storage order can never reach an outcome).
    flows: Mutex<BTreeMap<(NodeId, NodeId, i32), u64>>,
    delivered: AtomicU64,
    dropped_random: AtomicU64,
    dropped_down: AtomicU64,
    dropped_node: AtomicU64,
    jitter_total: AtomicU64,
}

impl FaultInjector {
    /// Injector for `plan`; `salt` decorrelates injectors sharing a plan
    /// (e.g. one per node), typically the link index.
    pub fn new(plan: FaultPlan, salt: u64) -> Self {
        FaultInjector {
            plan,
            salt,
            flows: Mutex::new(BTreeMap::new()),
            delivered: AtomicU64::new(0),
            dropped_random: AtomicU64::new(0),
            dropped_down: AtomicU64::new(0),
            dropped_node: AtomicU64::new(0),
            jitter_total: AtomicU64::new(0),
        }
    }

    /// The plan driving this injector.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Decide the fate of the next message of flow `(src, dst, tag)` whose
    /// injection starts at `start`.
    pub fn decide(&self, src: NodeId, dst: NodeId, tag: i32, start: SimNs) -> FaultOutcome {
        if self.plan.is_none() {
            return FaultOutcome::Deliver {
                extra_latency_ns: 0,
            };
        }
        // Node death trumps everything, including the tag floor: a dead
        // process answers on no channel.
        if self.plan.node_down_at(src, start) || self.plan.node_down_at(dst, start) {
            self.dropped_node.fetch_add(1, Ordering::Relaxed);
            return FaultOutcome::Drop(DropReason::NodeDown);
        }
        if !self.plan.applies_to_tag(tag) {
            return FaultOutcome::Deliver {
                extra_latency_ns: 0,
            };
        }
        if self.plan.down_at(start) {
            self.dropped_down.fetch_add(1, Ordering::Relaxed);
            return FaultOutcome::Drop(DropReason::LinkDown);
        }
        let k = {
            let mut flows = self.flows.lock();
            let c = flows.entry((src, dst, tag)).or_insert(0);
            let k = *c;
            *c += 1;
            k
        };
        // Pure per-message stream: seed ⊕ salt ⊕ flow identity ⊕ position.
        let key = (src as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((dst as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F))
            .wrapping_add((tag as i64 as u64).wrapping_mul(0x1656_67B1_9E37_79F9))
            .wrapping_add(k);
        let mut rng = XorShift64::new(self.plan.seed ^ self.salt.rotate_left(32) ^ key);
        if rng.gen_bool(self.plan.drop_probability) {
            self.dropped_random.fetch_add(1, Ordering::Relaxed);
            return FaultOutcome::Drop(DropReason::Random);
        }
        let extra = if self.plan.jitter_ns > 0 {
            rng.gen_range_u64(0, self.plan.jitter_ns + 1)
        } else {
            0
        };
        self.delivered.fetch_add(1, Ordering::Relaxed);
        self.jitter_total.fetch_add(extra, Ordering::Relaxed);
        FaultOutcome::Deliver {
            extra_latency_ns: extra,
        }
    }

    /// Snapshot the counters.
    pub fn counts(&self) -> FaultCounts {
        FaultCounts {
            delivered: self.delivered.load(Ordering::Relaxed),
            dropped_random: self.dropped_random.load(Ordering::Relaxed),
            dropped_down: self.dropped_down.load(Ordering::Relaxed),
            dropped_node: self.dropped_node.load(Ordering::Relaxed),
            jitter_ns_total: self.jitter_total.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_plan_never_perturbs() {
        let inj = FaultInjector::new(FaultPlan::none(), 0);
        for k in 0..1000 {
            assert_eq!(
                inj.decide(0, 1, k, k as u64 * 10),
                FaultOutcome::Deliver {
                    extra_latency_ns: 0
                }
            );
        }
        assert_eq!(inj.counts(), FaultCounts::default());
    }

    #[test]
    fn same_seed_same_fates() {
        let run = || {
            let inj = FaultInjector::new(FaultPlan::drops(42, 0.3).with_jitter(5_000), 7);
            (0..200)
                .map(|k| inj.decide(0, 1, 9, k * 100))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn fate_is_per_flow_position_not_call_order() {
        // Interleaving two flows differently must not change either flow's
        // fate sequence.
        let fates = |interleave: bool| {
            let inj = FaultInjector::new(FaultPlan::drops(3, 0.5), 0);
            let mut a = Vec::new();
            let mut b = Vec::new();
            if interleave {
                for _ in 0..50 {
                    a.push(inj.decide(0, 1, 1, 0));
                    b.push(inj.decide(0, 2, 1, 0));
                }
            } else {
                for _ in 0..50 {
                    b.push(inj.decide(0, 2, 1, 0));
                }
                for _ in 0..50 {
                    a.push(inj.decide(0, 1, 1, 0));
                }
            }
            (a, b)
        };
        assert_eq!(fates(true), fates(false));
    }

    #[test]
    fn drop_rate_tracks_probability() {
        let inj = FaultInjector::new(FaultPlan::drops(11, 0.01), 0);
        for k in 0..100_000u64 {
            inj.decide(0, 1, (k % 97) as i32, k);
        }
        let c = inj.counts();
        assert!(
            (500..1500).contains(&c.dropped_random),
            "1% of 100k ≈ 1000, got {}",
            c.dropped_random
        );
        assert_eq!(c.delivered + c.dropped(), 100_000);
    }

    #[test]
    fn down_window_drops_everything_inside() {
        let plan = FaultPlan::none().with_down_window(1_000, 2_000);
        let inj = FaultInjector::new(plan, 0);
        assert!(!inj.decide(0, 1, 0, 999).is_drop());
        assert_eq!(
            inj.decide(0, 1, 0, 1_000),
            FaultOutcome::Drop(DropReason::LinkDown)
        );
        assert_eq!(
            inj.decide(0, 1, 0, 1_999),
            FaultOutcome::Drop(DropReason::LinkDown)
        );
        assert!(!inj.decide(0, 1, 0, 2_000).is_drop());
        assert_eq!(inj.counts().dropped_down, 2);
    }

    #[test]
    fn jitter_is_bounded_and_counted() {
        let inj = FaultInjector::new(FaultPlan::none().with_jitter(500), 0);
        let mut total = 0;
        for k in 0..1000 {
            match inj.decide(0, 1, 0, k) {
                FaultOutcome::Deliver { extra_latency_ns } => {
                    assert!(extra_latency_ns <= 500);
                    total += extra_latency_ns;
                }
                FaultOutcome::Drop(_) => unreachable!("no drops configured"),
            }
        }
        assert!(total > 0, "jitter actually injected");
        assert_eq!(inj.counts().jitter_ns_total, total);
    }

    #[test]
    fn empty_down_window_is_a_no_op_not_a_panic() {
        let plan = FaultPlan::none().with_down_window(5_000, 5_000);
        assert!(plan.is_none(), "empty window must select nothing");
        let plan = FaultPlan::none().with_down_window(9, 3);
        assert!(plan.is_none(), "inverted window must select nothing");
        assert_eq!(
            FaultPlan::none().try_down_window(5_000, 5_000),
            Err(FaultPlanError::EmptyWindow {
                from: 5_000,
                until: 5_000
            })
        );
        assert!(FaultPlan::none().try_down_window(1, 2).is_ok());
    }

    #[test]
    fn permanent_node_kill_drops_both_directions_forever() {
        let plan = FaultPlan::none().with_node_down(1, 10_000);
        let inj = FaultInjector::new(plan.clone(), 0);
        assert!(!inj.decide(0, 1, 0, 9_999).is_drop(), "alive before kill");
        assert_eq!(
            inj.decide(0, 1, 0, 10_000),
            FaultOutcome::Drop(DropReason::NodeDown),
            "messages to the dead node drop"
        );
        assert_eq!(
            inj.decide(1, 2, 0, u64::MAX - 1),
            FaultOutcome::Drop(DropReason::NodeDown),
            "messages from the dead node drop, permanently"
        );
        assert!(!inj.decide(0, 2, 0, 20_000).is_drop(), "bystanders fine");
        assert_eq!(inj.counts().dropped_node, 2);
        assert!(plan.node_down_at(1, 10_000));
        assert!(!plan.node_down_at(1, 9_999));
        assert_eq!(plan.node_down_since(1), Some(10_000));
        assert_eq!(plan.node_down_since(0), None);
    }

    #[test]
    fn transient_node_kill_recovers_after_the_window() {
        let plan = FaultPlan::none().with_node_down_window(2, 1_000, 2_000);
        let inj = FaultInjector::new(plan.clone(), 0);
        assert!(!inj.decide(2, 0, 0, 999).is_drop());
        assert!(inj.decide(2, 0, 0, 1_500).is_drop());
        assert!(!inj.decide(2, 0, 0, 2_000).is_drop(), "restarted node");
        assert!(plan.node_down_in(2, 0, 1_001), "overlaps the window");
        assert!(!plan.node_down_in(2, 0, 1_000), "half-open: ends before");
        assert!(!plan.node_down_in(2, 2_000, 9_000), "after restart");
        // Empty transient windows are the same documented no-op.
        assert!(FaultPlan::none().with_node_down_window(0, 7, 7).is_none());
        assert!(FaultPlan::none().try_node_down_window(0, 7, 7).is_err());
    }

    #[test]
    fn node_kill_ignores_the_tag_floor() {
        let plan = FaultPlan::none()
            .with_tag_floor(1 << 22)
            .with_node_down(1, 0);
        let inj = FaultInjector::new(plan, 0);
        assert!(
            inj.decide(0, 1, 7, 0).is_drop(),
            "control-plane tag still drops to a dead node"
        );
    }

    #[test]
    fn tag_floor_shields_control_traffic() {
        let plan = FaultPlan::drops(5, 1.0).with_tag_floor(1 << 22);
        let inj = FaultInjector::new(plan, 0);
        assert!(!inj.decide(0, 1, 7, 0).is_drop(), "control tag immune");
        assert!(inj.decide(0, 1, 1 << 22, 0).is_drop(), "data tag faulted");
    }
}
