//! Serialized link timelines with a latency/bandwidth/overhead cost model.

use simtime::{Monitor, SimClock, SimNs};

/// Cost model of a point-to-point link (one direction).
///
/// Transferring `n` bytes whose injection starts at `t` occupies the link
/// until `t + per_msg_overhead + n / bandwidth`; the data is visible at the
/// far side `latency` later. This is the classic LogGP-style decomposition
/// the paper's sustained-bandwidth curves (Fig. 8) arise from: small
/// messages are overhead/latency bound, large messages bandwidth bound.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// One-way propagation + software latency (ns), paid once per message.
    pub latency_ns: SimNs,
    /// Sustained bandwidth, bytes per second.
    pub bandwidth_bps: f64,
    /// Fixed per-message injection overhead (ns) — setup, protocol, DMA
    /// descriptor costs. Serializes on the link like payload time.
    pub per_msg_overhead_ns: SimNs,
}

impl LinkSpec {
    /// Time (ns) the link is occupied injecting `bytes`.
    pub fn injection_ns(&self, bytes: usize) -> SimNs {
        let payload = (bytes as f64) * 1e9 / self.bandwidth_bps;
        self.per_msg_overhead_ns + payload.round() as SimNs
    }

    /// End-to-end time (ns) for a single message of `bytes` on an idle
    /// link: injection plus propagation latency.
    pub fn message_ns(&self, bytes: usize) -> SimNs {
        self.injection_ns(bytes) + self.latency_ns
    }

    /// Sustained bandwidth (bytes/s) observed for back-to-back messages of
    /// `bytes` each — the metric Fig. 8 plots.
    pub fn sustained_bps(&self, bytes: usize) -> f64 {
        bytes as f64 * 1e9 / self.injection_ns(bytes) as f64
    }
}

/// Result of reserving link capacity: all instants are virtual ns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reservation {
    /// When injection begins (>= requested earliest start; the link may
    /// have been busy).
    pub start: SimNs,
    /// When injection ends — the link is free and, for a sender, the local
    /// buffer is reusable (MPI send-completion semantics).
    pub end: SimNs,
    /// When the payload is visible at the far end.
    pub arrival: SimNs,
}

/// One direction of a physical link: a serialized FIFO timeline.
///
/// `reserve` is pure bookkeeping (returns instants, never blocks); combine
/// with [`simtime::Actor::advance_until`] when the caller must wait.
pub struct Link {
    spec: LinkSpec,
    timeline: Monitor<SimNs>, // busy-until
}

impl Link {
    /// New idle link with the given cost model.
    pub fn new(clock: SimClock, spec: LinkSpec) -> Self {
        Link {
            spec,
            timeline: Monitor::new(clock, 0),
        }
    }

    /// This link's cost model.
    pub fn spec(&self) -> LinkSpec {
        self.spec
    }

    /// Reserve capacity for `bytes`, starting no earlier than `earliest`.
    /// FIFO: requests are served in reservation order.
    pub fn reserve(&self, bytes: usize, earliest: SimNs) -> Reservation {
        let inj = self.spec.injection_ns(bytes);
        self.timeline.with(|busy_until| {
            let start = earliest.max(*busy_until);
            let end = start + inj;
            *busy_until = end;
            Reservation {
                start,
                end,
                arrival: end + self.spec.latency_ns,
            }
        })
    }

    /// Reserve the link for an explicit duration (callers that compute
    /// their own transfer cost, e.g. PCIe transfers whose rate depends on
    /// pinned/pageable/mapped host memory). The link's latency still
    /// applies to `arrival`.
    pub fn reserve_duration(&self, duration_ns: SimNs, earliest: SimNs) -> Reservation {
        self.timeline.with(|busy_until| {
            let start = earliest.max(*busy_until);
            let end = start + duration_ns;
            *busy_until = end;
            Reservation {
                start,
                end,
                arrival: end + self.spec.latency_ns,
            }
        })
    }

    /// The instant the link becomes free given current reservations.
    pub fn busy_until(&self) -> SimNs {
        self.timeline.peek(|b| *b)
    }

    /// Run `f` with both links' busy-until timelines locked (self first —
    /// callers must use a consistent order).
    pub fn with_timelines<R>(
        &self,
        other: &Link,
        f: impl FnOnce(&mut SimNs, &mut SimNs) -> R,
    ) -> R {
        self.timeline.with(|a| other.timeline.with(|b| f(a, b)))
    }
}

/// Reserve a transfer across **two** serialized timelines (e.g. sender NIC
/// tx and receiver NIC rx): injection occupies both for the same window.
///
/// The endpoints may have different cost models (a heterogeneous fabric,
/// e.g. GbE feeding an IB-attached node): the transfer proceeds at the
/// pace of the **slower** side — injection takes the larger of the two
/// injection times and the payload is visible after the larger of the two
/// latencies.
pub fn reserve_pair(tx: &Link, rx: &Link, bytes: usize, earliest: SimNs) -> Reservation {
    let inj = tx.spec.injection_ns(bytes).max(rx.spec.injection_ns(bytes));
    let latency = tx.spec.latency_ns.max(rx.spec.latency_ns);
    // Lock ordering: always tx then rx; all callers go through this helper.
    tx.timeline.with(|tx_busy| {
        rx.timeline.with(|rx_busy| {
            let start = earliest.max(*tx_busy).max(*rx_busy);
            let end = start + inj;
            *tx_busy = end;
            *rx_busy = end;
            Reservation {
                start,
                end,
                arrival: end + latency,
            }
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> LinkSpec {
        LinkSpec {
            latency_ns: 1_000,
            bandwidth_bps: 1e9, // 1 GB/s => 1 ns per byte
            per_msg_overhead_ns: 100,
        }
    }

    #[test]
    fn injection_cost_is_overhead_plus_payload() {
        let s = spec();
        assert_eq!(s.injection_ns(0), 100);
        assert_eq!(s.injection_ns(1_000), 1_100);
        assert_eq!(s.message_ns(1_000), 2_100);
    }

    #[test]
    fn sustained_bandwidth_approaches_peak_for_large_messages() {
        let s = spec();
        let small = s.sustained_bps(64);
        let large = s.sustained_bps(64 * 1024 * 1024);
        assert!(small < 0.5 * s.bandwidth_bps);
        assert!(large > 0.99 * s.bandwidth_bps);
        assert!(large <= s.bandwidth_bps);
    }

    #[test]
    fn idle_link_starts_at_earliest() {
        let clock = SimClock::new();
        let l = Link::new(clock, spec());
        let r = l.reserve(1_000, 500);
        assert_eq!(r.start, 500);
        assert_eq!(r.end, 1_600);
        assert_eq!(r.arrival, 2_600);
    }

    #[test]
    fn busy_link_serializes_fifo() {
        let clock = SimClock::new();
        let l = Link::new(clock, spec());
        let r1 = l.reserve(1_000, 0);
        let r2 = l.reserve(1_000, 0); // queued behind r1
        assert_eq!(r2.start, r1.end);
        assert_eq!(r2.end, r1.end + 1_100);
        let r3 = l.reserve(10, 10_000); // idle gap: starts at earliest
        assert_eq!(r3.start, 10_000);
    }

    #[test]
    fn paired_reservation_respects_both_timelines() {
        let clock = SimClock::new();
        let tx = Link::new(clock.clone(), spec());
        let rx = Link::new(clock, spec());
        rx.reserve(5_000, 0); // rx busy until 5_100+? => 100+5000=5100
        let r = reserve_pair(&tx, &rx, 1_000, 0);
        assert_eq!(r.start, 5_100);
        assert_eq!(tx.busy_until(), r.end);
        assert_eq!(rx.busy_until(), r.end);
    }

    #[test]
    fn heterogeneous_pair_paces_to_the_slower_spec() {
        let clock = SimClock::new();
        let fast = LinkSpec {
            latency_ns: 500,
            bandwidth_bps: 10e9, // 0.1 ns/byte
            per_msg_overhead_ns: 10,
        };
        let slow = spec(); // 1 ns/byte, 100 ns overhead, 1000 ns latency
                           // Fast sender into slow receiver: receiver-bound.
        let tx = Link::new(clock.clone(), fast);
        let rx = Link::new(clock.clone(), slow);
        let r = reserve_pair(&tx, &rx, 1_000, 0);
        assert_eq!(r.end - r.start, slow.injection_ns(1_000));
        assert_eq!(r.arrival, r.end + slow.latency_ns);
        // Slow sender into fast receiver: sender-bound, same numbers.
        let tx2 = Link::new(clock.clone(), slow);
        let rx2 = Link::new(clock, fast);
        let r2 = reserve_pair(&tx2, &rx2, 1_000, 0);
        assert_eq!(r2.end - r2.start, slow.injection_ns(1_000));
        assert_eq!(r2.arrival, r2.end + slow.latency_ns);
        // Both timelines advanced to the common end.
        assert_eq!(tx2.busy_until(), r2.end);
        assert_eq!(rx2.busy_until(), r2.end);
    }
}
