//! Visibility-aware mailboxes: payloads posted with a future arrival time
//! become receivable only once the virtual clock reaches it.

use std::sync::Arc;

use simtime::{Actor, Monitor, SimClock, SimNs};

/// A payload in flight: receivable once `now >= visible_at`.
#[derive(Debug, Clone)]
pub struct Envelope<T> {
    /// Virtual instant the payload arrives at the receiver.
    pub visible_at: SimNs,
    /// Monotone per-mailbox sequence number (post order).
    pub seq: u64,
    /// The payload itself.
    pub payload: T,
}

struct MailboxState<T> {
    queue: Vec<Envelope<T>>,
    next_seq: u64,
}

/// A clock-aware mailbox with predicate-based selective receive.
///
/// Posting schedules a clock alarm at `visible_at`, so a receiver blocked
/// on an envelope that is still "in flight" wakes exactly at its arrival —
/// even if no other actor is active. This is how `minimpi` gives messages
/// real network timing without a progress thread.
pub struct Mailbox<T> {
    inner: Arc<Monitor<MailboxState<T>>>,
}

impl<T> Clone for Mailbox<T> {
    fn clone(&self) -> Self {
        Mailbox {
            inner: self.inner.clone(),
        }
    }
}

impl<T: Send> Mailbox<T> {
    /// New empty mailbox bound to `clock`.
    pub fn new(clock: SimClock) -> Self {
        Mailbox {
            inner: Arc::new(Monitor::new(
                clock,
                MailboxState {
                    queue: Vec::new(),
                    next_seq: 0,
                },
            )),
        }
    }

    /// Post `payload`, visible to receivers at `visible_at`. Returns its
    /// sequence number (post order, used for MPI non-overtaking matching).
    pub fn post(&self, payload: T, visible_at: SimNs) -> u64 {
        let seq = self.inner.with(|st| {
            let seq = st.next_seq;
            st.next_seq += 1;
            st.queue.push(Envelope {
                visible_at,
                seq,
                payload,
            });
            seq
        });
        self.inner.clock().schedule_alarm(visible_at);
        seq
    }

    /// Blocking selective receive: among envelopes matching `matches`, the
    /// **lowest-seq** one is chosen (post order — MPI's non-overtaking
    /// rule), and the call completes once that envelope is visible.
    ///
    /// Note the two-phase semantics: matching is by post order, then the
    /// receiver waits for the *matched* envelope's arrival even if a
    /// later-posted matching envelope would arrive sooner — exactly MPI's
    /// behaviour for same (source, tag) traffic.
    pub fn recv_matching(&self, actor: &Actor, mut matches: impl FnMut(&T) -> bool) -> Envelope<T> {
        // Phase 1: wait for any matching envelope to exist, note its seq.
        let (seq, visible_at) = self.inner.wait_labeled(actor, "mailbox match", |st| {
            st.queue
                .iter()
                .filter(|e| matches(&e.payload))
                .min_by_key(|e| e.seq)
                .map(|e| (e.seq, e.visible_at))
        });
        // Phase 2: wait for that envelope's visibility, then take it.
        let clock = self.inner.clock().clone();
        self.inner
            .wait_labeled(actor, "mailbox visibility", move |st| {
                if clock.now_ns() < visible_at {
                    return None;
                }
                let idx = st.queue.iter().position(|e| e.seq == seq)?;
                Some(st.queue.swap_remove(idx))
            })
    }

    /// Non-blocking probe: is a matching envelope present **and visible**?
    pub fn probe(&self, mut matches: impl FnMut(&T) -> bool) -> bool {
        let now = self.inner.clock().now_ns();
        self.inner.peek(|st| {
            st.queue
                .iter()
                .any(|e| e.visible_at <= now && matches(&e.payload))
        })
    }

    /// Non-blocking poll hook for progress engines: the `visible_at` of the
    /// lowest-seq matching envelope, whether or not it is visible yet.
    /// `Some(t)` with `t > now` means "a match exists but is still in
    /// flight — park until `t`"; `None` means no match has been posted, so
    /// the poller must wait for a clock notify instead of an alarm.
    pub fn earliest_matching_visibility(
        &self,
        mut matches: impl FnMut(&T) -> bool,
    ) -> Option<SimNs> {
        self.inner.peek(|st| {
            st.queue
                .iter()
                .filter(|e| matches(&e.payload))
                .min_by_key(|e| e.seq)
                .map(|e| e.visible_at)
        })
    }

    /// Non-blocking matching receive of the lowest-seq visible match.
    pub fn try_recv_matching(&self, mut matches: impl FnMut(&T) -> bool) -> Option<Envelope<T>> {
        let now = self.inner.clock().now_ns();
        self.inner.try_now(|st| {
            let seq = st
                .queue
                .iter()
                .filter(|e| e.visible_at <= now && matches(&e.payload))
                .min_by_key(|e| e.seq)
                .map(|e| e.seq)?;
            let idx = st.queue.iter().position(|e| e.seq == seq)?;
            Some(st.queue.swap_remove(idx))
        })
    }

    /// Number of queued (visible or in-flight) envelopes.
    pub fn len(&self) -> usize {
        self.inner.peek(|st| st.queue.len())
    }

    /// True when no envelopes are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn receive_waits_for_visibility() {
        let clock = SimClock::new();
        let mb = Mailbox::new(clock.clone());
        let a = clock.register("recv");
        mb.post(7u32, 5_000);
        let env = mb.recv_matching(&a, |_| true);
        assert_eq!(env.payload, 7);
        assert_eq!(a.now_ns(), 5_000, "woken exactly at arrival");
    }

    #[test]
    fn matching_is_post_order_not_arrival_order() {
        // Non-overtaking: the first-posted matching envelope wins even if a
        // later one is visible earlier.
        let clock = SimClock::new();
        let mb = Mailbox::new(clock.clone());
        let a = clock.register("recv");
        mb.post("slow-but-first", 10_000);
        mb.post("fast-but-second", 1_000);
        let env = mb.recv_matching(&a, |_| true);
        assert_eq!(env.payload, "slow-but-first");
        assert_eq!(a.now_ns(), 10_000);
        let env2 = mb.recv_matching(&a, |_| true);
        assert_eq!(env2.payload, "fast-but-second");
        assert_eq!(a.now_ns(), 10_000, "second was already visible");
    }

    #[test]
    fn selective_receive_skips_non_matching() {
        let clock = SimClock::new();
        let mb = Mailbox::new(clock.clone());
        let a = clock.register("recv");
        mb.post(("tagA", 1), 0);
        mb.post(("tagB", 2), 0);
        let env = mb.recv_matching(&a, |(t, _)| *t == "tagB");
        assert_eq!(env.payload.1, 2);
        assert_eq!(mb.len(), 1);
    }

    #[test]
    fn probe_respects_visibility() {
        let clock = SimClock::new();
        let mb = Mailbox::new(clock.clone());
        let a = clock.register("x");
        mb.post(1u8, 100);
        assert!(!mb.probe(|_| true), "in flight: not probe-able yet");
        a.advance_ns(100);
        assert!(mb.probe(|_| true));
        assert!(mb.try_recv_matching(|_| true).is_some());
        assert!(mb.try_recv_matching(|_| true).is_none());
    }

    #[test]
    fn earliest_matching_visibility_reports_in_flight_matches() {
        let clock = SimClock::new();
        let mb = Mailbox::new(clock.clone());
        assert_eq!(mb.earliest_matching_visibility(|_: &u8| true), None);
        mb.post(1u8, 9_000);
        mb.post(2u8, 4_000);
        // Lowest-seq match wins (post order), not earliest arrival.
        assert_eq!(mb.earliest_matching_visibility(|_| true), Some(9_000));
        assert_eq!(mb.earliest_matching_visibility(|p| *p == 2), Some(4_000));
        assert_eq!(mb.earliest_matching_visibility(|p| *p == 3), None);
    }

    #[test]
    fn cross_thread_delivery_wakes_blocked_receiver() {
        let clock = SimClock::new();
        let mb = Mailbox::new(clock.clone());
        let r = clock.register("recv");
        let s = clock.register("send");
        let mb2 = mb.clone();
        let sender = thread::spawn(move || {
            s.advance_ns(3_000);
            let now = s.now_ns();
            mb2.post(42u64, now + 2_000);
        });
        let env = mb.recv_matching(&r, |_| true);
        assert_eq!(env.payload, 42);
        assert_eq!(r.now_ns(), 5_000);
        sender.join().expect("worker thread panicked");
    }
}
