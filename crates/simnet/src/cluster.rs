//! Cluster topology: nodes with per-direction NIC timelines over a shared
//! fabric spec, with presets for the paper's two systems (Table I).

use crate::fault::{DropReason, FaultInjector, FaultOutcome, FaultPlan};
use crate::link::{reserve_pair, Link, LinkSpec, Reservation};
use simtime::plock::Mutex;
use simtime::{SimClock, SimNs};

/// Index of a node within a cluster.
pub type NodeId = usize;

/// Optional CXL shared-memory pool attached to groups of nodes (cMPI's
/// third fabric class): consecutive groups of `pool_nodes` nodes share one
/// load/store memory pool with its own latency/bandwidth point.
///
/// One-sided (RMA) traffic between two nodes of the same pool bypasses the
/// NIC entirely and serializes on the pool's single shared timeline — the
/// per-pool contention point. Two-sided traffic and cross-pool RMA still
/// ride the NIC.
#[derive(Debug, Clone, Copy)]
pub struct CxlSpec {
    /// Nodes per pool; node `i` belongs to pool `i / pool_nodes`.
    pub pool_nodes: usize,
    /// Cost model of the pool's load/store port (shared by all members).
    pub link: LinkSpec,
}

/// Which transport a given `(src, dst)` node pair uses for one-sided
/// traffic (see [`Fabric::fabric_class`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FabricClass {
    /// Same node: shared-memory loopback.
    Loopback,
    /// Different nodes, no common CXL pool: NIC tx/rx timelines.
    Nic,
    /// Different nodes sharing CXL pool `.0`: pool load/store port.
    Cxl(usize),
}

/// Static description of a cluster (Table I row).
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// Human-readable system name ("Cichlid", "RICC").
    pub name: &'static str,
    /// Number of compute nodes available.
    pub nodes: usize,
    /// CPU model string (Table I, documentation only).
    pub cpu: &'static str,
    /// GPU model string (Table I; the matching `minicl` device preset is
    /// selected by the system config in the `clmpi` crate).
    pub gpu: &'static str,
    /// Interconnect name (Table I).
    pub nic: &'static str,
    /// MPI implementation string (Table I, documentation only).
    pub mpi: &'static str,
    /// Cost model of the interconnect, one direction per NIC.
    pub link: LinkSpec,
    /// Optional CXL shared-memory pools (None on the Table I systems).
    pub cxl: Option<CxlSpec>,
}

impl ClusterSpec {
    /// "Cichlid": 4 nodes, Core i7 930 + Tesla C2070, Gigabit Ethernet.
    ///
    /// GbE sustains ~117 MB/s with TCP; measured half-round-trip latencies
    /// on such clusters are tens of microseconds.
    pub fn cichlid() -> Self {
        ClusterSpec {
            name: "Cichlid",
            nodes: 4,
            cpu: "Intel Core i7 930 (2.8 GHz)",
            gpu: "NVIDIA Tesla C2070",
            nic: "Gigabit Ethernet",
            mpi: "Open MPI 1.6.0",
            link: LinkSpec {
                latency_ns: 50_000,          // ~50 us TCP/GbE
                bandwidth_bps: 117.5e6,      // ~117.5 MB/s sustained
                per_msg_overhead_ns: 30_000, // per-message software cost
            },
            cxl: None,
        }
    }

    /// "RICC": 100 nodes, 2x Xeon 5570 + Tesla C1060, InfiniBand DDR used
    /// through IPoIB (the paper runs IPoIB for thread-safety with Open
    /// MPI), which caps sustained bandwidth well below native IB verbs.
    pub fn ricc() -> Self {
        ClusterSpec {
            name: "RICC",
            nodes: 100,
            cpu: "2x Intel Xeon 5570 (2.93 GHz)",
            gpu: "NVIDIA Tesla C1060",
            nic: "InfiniBand DDR (IPoIB)",
            mpi: "Open MPI 1.6.1",
            link: LinkSpec {
                latency_ns: 25_000,    // IPoIB adds software latency
                bandwidth_bps: 1.30e9, // ~1.3 GB/s over IPoIB
                // IPoIB + MPI_THREAD_MULTIPLE pays a hefty per-message
                // software cost (TCP stack over IB, MPI locking); this is
                // the overhead the pipelined strategy's block size trades
                // against (Fig. 8(b)).
                per_msg_overhead_ns: 40_000,
            },
            cxl: None,
        }
    }

    /// "CXL pod": 16 nodes in pools of 4 sharing a CXL 2.0 memory pool
    /// (cMPI's evaluation fabric), with a RoCE NIC between pools.
    ///
    /// The pool port models a x8 CXL link: sub-microsecond load/store
    /// latency and ~28 GB/s sustained, but *one* port per pool — every
    /// window transfer inside a pool contends on the same timeline. The
    /// NIC is an order of magnitude slower per byte, which is the gap the
    /// one-sided RMA path exists to exploit (BENCH_rma.json).
    pub fn cxl_pod() -> Self {
        ClusterSpec {
            name: "CXL-Pod",
            nodes: 16,
            cpu: "2x AMD EPYC 9334 (2.7 GHz)",
            gpu: "NVIDIA A30",
            nic: "100GbE (RoCE v2)",
            mpi: "cMPI prototype",
            link: LinkSpec {
                latency_ns: 10_000,   // kernel-bypass RoCE
                bandwidth_bps: 3.0e9, // ~3 GB/s sustained per NIC
                per_msg_overhead_ns: 8_000,
            },
            cxl: Some(CxlSpec {
                pool_nodes: 4,
                link: LinkSpec {
                    latency_ns: 600,          // CXL.mem load/store
                    bandwidth_bps: 28.0e9,    // x8 CXL 2.0 port
                    per_msg_overhead_ns: 400, // doorbell + coherence
                },
            }),
        }
    }

    /// All cluster presets (Table I rows plus the CXL pod).
    pub fn presets() -> Vec<ClusterSpec> {
        vec![Self::cichlid(), Self::ricc(), Self::cxl_pod()]
    }

    /// CXL pool id of `node`, if this spec attaches pools.
    pub fn pool_of(&self, node: NodeId) -> Option<usize> {
        self.cxl.map(|c| node / c.pool_nodes.max(1))
    }
}

/// Live fabric: per-node tx/rx timelines sharing one [`LinkSpec`].
///
/// A transfer from `a` to `b` serializes on `a`'s tx timeline **and** `b`'s
/// rx timeline (full-duplex NICs: a node can send and receive
/// concurrently, but two sends from one node queue up, as do two receives
/// into one node — this is what makes the nanopowder coefficient
/// distribution cost grow with node count, Fig. 10).
pub struct Fabric {
    spec: ClusterSpec,
    clock: SimClock,
    tx: Vec<Link>,
    rx: Vec<Link>,
    /// One shared load/store timeline per CXL pool (empty without a
    /// [`CxlSpec`]): the per-pool contention point for one-sided traffic.
    pools: Vec<Link>,
    /// The plan the injectors run under (kept even when trivial, so
    /// higher layers can query node-down schedules cheaply).
    plan: FaultPlan,
    /// One fault injector per source node's tx link (None: perfect fabric,
    /// zero overhead on the hot path).
    faults: Option<Vec<FaultInjector>>,
    /// Deferred-reservation arbiter state (see [`Fabric::reserve_deferred`]).
    defer: Mutex<DeferQueue>,
}

/// How much link time a deferred reservation claims.
enum DeferSize {
    /// Payload bytes at the raw link rate.
    Bytes(usize),
    /// An explicit window (see [`Fabric::reserve_duration`]).
    Duration(SimNs),
    /// Payload bytes routed per node-pair fabric class (see
    /// [`Fabric::reserve_rma`]).
    RmaBytes(usize),
}

/// A reservation posted to the arbiter: what to claim, the instant it may
/// start, and the completion to run once granted.
struct DeferredSend {
    src: NodeId,
    dst: NodeId,
    /// Flow tag, part of the grant sort key: one node's engine and app
    /// threads may post same-instant jobs to the same peer, and their
    /// flows (distinct tags) must not be ordered by which OS thread won.
    tag: i32,
    size: DeferSize,
    earliest: SimNs,
    /// Posting order, the final tie-break. Within one OS thread it is
    /// program order; across threads it only decides between jobs of the
    /// same flow at the same instant, where either order yields the same
    /// timeline.
    seq: u64,
    complete: Box<dyn FnOnce(Reservation) + Send>,
}

#[derive(Default)]
struct DeferQueue {
    pending: Vec<DeferredSend>,
    next_seq: u64,
}

impl Fabric {
    /// Build a fabric for the first `nodes` nodes of `spec`.
    pub fn new(clock: SimClock, spec: ClusterSpec, nodes: usize) -> Self {
        Self::with_faults(clock, spec, nodes, FaultPlan::none())
    }

    /// Build a fabric whose links run under `plan`. A [`FaultPlan::none`]
    /// plan attaches no injectors and behaves bit-identically to
    /// [`Fabric::new`].
    pub fn with_faults(clock: SimClock, spec: ClusterSpec, nodes: usize, plan: FaultPlan) -> Self {
        assert!(nodes >= 1, "fabric needs at least one node");
        assert!(
            nodes <= spec.nodes,
            "{} has only {} nodes, {} requested",
            spec.name,
            spec.nodes,
            nodes
        );
        let tx = (0..nodes)
            .map(|_| Link::new(clock.clone(), spec.link))
            .collect();
        let rx = (0..nodes)
            .map(|_| Link::new(clock.clone(), spec.link))
            .collect();
        let pools = match spec.cxl {
            Some(c) => {
                let n = nodes.div_ceil(c.pool_nodes.max(1));
                (0..n).map(|_| Link::new(clock.clone(), c.link)).collect()
            }
            None => Vec::new(),
        };
        let faults = (!plan.is_none()).then(|| {
            (0..nodes)
                .map(|i| FaultInjector::new(plan.clone(), i as u64))
                .collect()
        });
        Fabric {
            spec,
            clock,
            tx,
            rx,
            pools,
            plan,
            faults,
            defer: Mutex::new(DeferQueue::default()),
        }
    }

    /// The static description this fabric was built from.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// Number of nodes wired up.
    pub fn nodes(&self) -> usize {
        self.tx.len()
    }

    /// True if a non-trivial fault plan is attached.
    pub fn has_faults(&self) -> bool {
        self.faults.is_some()
    }

    /// The fault plan this fabric runs under ([`FaultPlan::none`] on a
    /// perfect fabric).
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// True if `node` is scheduled dead at virtual instant `t` (the
    /// deterministic ground truth higher layers classify timeouts with).
    pub fn node_down_at(&self, node: NodeId, t: SimNs) -> bool {
        self.plan.node_down_at(node, t)
    }

    /// True if `node` is scheduled dead at any instant of `[from, until)`.
    pub fn node_down_in(&self, node: NodeId, from: SimNs, until: SimNs) -> bool {
        self.plan.node_down_in(node, from, until)
    }

    /// Transport class of the `(src, dst)` node pair for one-sided
    /// traffic: loopback on the same node, the shared CXL pool port when
    /// both nodes sit in the same pool, the NIC otherwise.
    pub fn fabric_class(&self, src: NodeId, dst: NodeId) -> FabricClass {
        if src == dst {
            return FabricClass::Loopback;
        }
        match (self.spec.pool_of(src), self.spec.pool_of(dst)) {
            (Some(a), Some(b)) if a == b && a < self.pools.len() => FabricClass::Cxl(a),
            _ => FabricClass::Nic,
        }
    }

    /// Decide the fate of a one-sided transfer of flow `(src, dst, tag)`.
    ///
    /// The CXL load/store path has no packets to drop: random-drop and
    /// link-jitter faults do not apply, but a scheduled node death still
    /// does — a window op touching a dead node's memory fails with
    /// [`DropReason::NodeDown`]. NIC-routed pairs compose with the full
    /// [`FaultPlan`] exactly like two-sided traffic.
    pub fn rma_fault_decision(
        &self,
        src: NodeId,
        dst: NodeId,
        tag: i32,
        start: SimNs,
    ) -> FaultOutcome {
        match self.fabric_class(src, dst) {
            FabricClass::Cxl(_) => {
                if self.plan.node_down_at(src, start) || self.plan.node_down_at(dst, start) {
                    FaultOutcome::Drop(DropReason::NodeDown)
                } else {
                    FaultOutcome::Deliver {
                        extra_latency_ns: 0,
                    }
                }
            }
            _ => self.fault_decision(src, dst, tag, start),
        }
    }

    /// Decide the fate of the next message of flow `(src, dst, tag)` whose
    /// injection starts at `start`. Loopback (src == dst) traffic and
    /// fault-free fabrics always deliver cleanly.
    pub fn fault_decision(&self, src: NodeId, dst: NodeId, tag: i32, start: SimNs) -> FaultOutcome {
        match &self.faults {
            Some(inj) if src != dst => inj[src].decide(src, dst, tag, start),
            _ => FaultOutcome::Deliver {
                extra_latency_ns: 0,
            },
        }
    }

    /// Aggregate fault counters across every link (zeroes when no plan is
    /// attached).
    pub fn fault_counts(&self) -> crate::fault::FaultCounts {
        let mut total = crate::fault::FaultCounts::default();
        if let Some(inj) = &self.faults {
            for i in inj {
                let c = i.counts();
                total.delivered += c.delivered;
                total.dropped_random += c.dropped_random;
                total.dropped_down += c.dropped_down;
                total.dropped_node += c.dropped_node;
                total.jitter_ns_total += c.jitter_ns_total;
            }
        }
        total
    }

    /// Reserve an inter-node transfer of `bytes` from `src` to `dst`,
    /// starting no earlier than `earliest`. Intra-node transfers (src ==
    /// dst) pay a fast loopback: no NIC occupancy, small fixed latency.
    pub fn reserve(&self, src: NodeId, dst: NodeId, bytes: usize, earliest: SimNs) -> Reservation {
        assert!(
            src < self.nodes() && dst < self.nodes(),
            "node out of range"
        );
        if src == dst {
            // Shared-memory loopback: ~6 GB/s memcpy, 1 us latency.
            let inj = 1_000 + (bytes as f64 / 6.0e9 * 1e9).round() as SimNs;
            return Reservation {
                start: earliest,
                end: earliest + inj,
                arrival: earliest + inj + 1_000,
            };
        }
        reserve_pair(&self.tx[src], &self.rx[dst], bytes, earliest)
    }

    /// Reserve an inter-node window of an explicit duration (for callers
    /// whose effective rate differs from the raw link rate, e.g. a mapped
    /// zero-copy stream bottlenecked by PCIe). Occupies both endpoints.
    pub fn reserve_duration(
        &self,
        src: NodeId,
        dst: NodeId,
        duration_ns: SimNs,
        earliest: SimNs,
    ) -> Reservation {
        assert!(
            src < self.nodes() && dst < self.nodes(),
            "node out of range"
        );
        if src == dst {
            return Reservation {
                start: earliest,
                end: earliest + duration_ns,
                arrival: earliest + duration_ns + 1_000,
            };
        }
        let tx = &self.tx[src];
        let rx = &self.rx[dst];
        let latency = self.spec.link.latency_ns;
        // Same lock ordering as reserve_pair: tx then rx.
        tx.with_timelines(rx, |tx_busy, rx_busy| {
            let start = earliest.max(*tx_busy).max(*rx_busy);
            let end = start + duration_ns;
            *tx_busy = end;
            *rx_busy = end;
            Reservation {
                start,
                end,
                arrival: end + latency,
            }
        })
    }

    /// Reserve a one-sided (window) transfer of `bytes` from `src` to
    /// `dst`, routed by [`Fabric::fabric_class`]: loopback stays the
    /// shared-memory fast path, a co-located pair claims its CXL pool's
    /// single load/store timeline (per-pool contention), and a cross-pool
    /// pair falls back to the NIC tx/rx pair.
    pub fn reserve_rma(
        &self,
        src: NodeId,
        dst: NodeId,
        bytes: usize,
        earliest: SimNs,
    ) -> Reservation {
        assert!(
            src < self.nodes() && dst < self.nodes(),
            "node out of range"
        );
        match self.fabric_class(src, dst) {
            FabricClass::Loopback => self.reserve(src, dst, bytes, earliest),
            FabricClass::Cxl(p) => self.pools[p].reserve(bytes, earliest),
            FabricClass::Nic => reserve_pair(&self.tx[src], &self.rx[dst], bytes, earliest),
        }
    }

    /// [`Fabric::reserve_rma`] through the deferred-reservation arbiter
    /// (same determinism contract as [`Fabric::reserve_deferred`]): the
    /// pool timeline is shared by every rank of the pool, so same-instant
    /// claims must be granted in canonical order, not OS-thread order.
    pub fn reserve_rma_deferred(
        &self,
        src: NodeId,
        dst: NodeId,
        tag: i32,
        bytes: usize,
        earliest: SimNs,
        complete: Box<dyn FnOnce(Reservation) + Send>,
    ) {
        self.defer_job(
            src,
            dst,
            tag,
            DeferSize::RmaBytes(bytes),
            earliest,
            complete,
        )
    }

    /// Post a transfer to the fabric's deferred-reservation arbiter
    /// instead of claiming link time immediately.
    ///
    /// [`Fabric::reserve`] is first-come-first-served in *call* order, so
    /// when two engine threads reserve the same NIC timeline at the same
    /// virtual instant, link occupancy depends on which OS thread got
    /// there first — a real-time race inside a virtual-time simulation.
    /// A deferred job instead waits until the clock has *passed* its
    /// start instant; [`Fabric::pump`] then grants every due job in
    /// `(earliest, src, dst, tag, seq)` order and runs `complete` with
    /// its reservation. Reservations are backdated to `earliest`, so the
    /// simulated timeline is exactly what an eager reservation in the
    /// canonical order would have produced.
    ///
    /// Liveness: posting schedules a clock alarm just past `earliest`, so
    /// blocked actors re-check (and pump) once the job is grantable.
    pub fn reserve_deferred(
        &self,
        src: NodeId,
        dst: NodeId,
        tag: i32,
        bytes: usize,
        earliest: SimNs,
        complete: Box<dyn FnOnce(Reservation) + Send>,
    ) {
        self.defer_job(src, dst, tag, DeferSize::Bytes(bytes), earliest, complete)
    }

    /// [`Fabric::reserve_deferred`] with an explicit window duration (the
    /// deferred counterpart of [`Fabric::reserve_duration`]).
    pub fn reserve_duration_deferred(
        &self,
        src: NodeId,
        dst: NodeId,
        tag: i32,
        duration_ns: SimNs,
        earliest: SimNs,
        complete: Box<dyn FnOnce(Reservation) + Send>,
    ) {
        self.defer_job(
            src,
            dst,
            tag,
            DeferSize::Duration(duration_ns),
            earliest,
            complete,
        )
    }

    fn defer_job(
        &self,
        src: NodeId,
        dst: NodeId,
        tag: i32,
        size: DeferSize,
        earliest: SimNs,
        complete: Box<dyn FnOnce(Reservation) + Send>,
    ) {
        assert!(
            src < self.nodes() && dst < self.nodes(),
            "node out of range"
        );
        // Clamp to the present. A poster is runnable, so the clock cannot
        // advance during this call — every job later posted carries
        // `earliest >= now >= any instant already pumped`, which is what
        // freezes each grant batch before it is sorted.
        let earliest = earliest.max(self.clock.now_ns());
        {
            let mut q = self.defer.lock();
            let seq = q.next_seq;
            q.next_seq += 1;
            q.pending.push(DeferredSend {
                src,
                dst,
                tag,
                size,
                earliest,
                seq,
                complete,
            });
        }
        self.clock.schedule_alarm(earliest + 1);
    }

    /// Grant every deferred reservation with `earliest < now`, in
    /// `(earliest, src, dst, tag, seq)` order. Idempotent and callable
    /// from any thread; the request and engine layers pump from their
    /// wait predicates. Completions run under the queue lock so that the
    /// grant order also fixes receiver-side message sequence numbers —
    /// the other place same-instant order is observable.
    pub fn pump(&self, now: SimNs) {
        let mut q = self.defer.lock();
        if !q.pending.iter().any(|j| j.earliest < now) {
            return;
        }
        let mut due = Vec::new();
        let mut i = 0;
        while i < q.pending.len() {
            if q.pending[i].earliest < now {
                due.push(q.pending.swap_remove(i));
            } else {
                i += 1;
            }
        }
        due.sort_by_key(|j| (j.earliest, j.src, j.dst, j.tag, j.seq));
        for j in due {
            let r = match j.size {
                DeferSize::Bytes(b) => self.reserve(j.src, j.dst, b, j.earliest),
                DeferSize::Duration(d) => self.reserve_duration(j.src, j.dst, d, j.earliest),
                DeferSize::RmaBytes(b) => self.reserve_rma(j.src, j.dst, b, j.earliest),
            };
            (j.complete)(r);
        }
    }

    /// Number of posted-but-ungranted deferred reservations (diagnostics).
    pub fn deferred_pending(&self) -> usize {
        self.defer.lock().pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table_one() {
        let c = ClusterSpec::cichlid();
        assert_eq!(c.nodes, 4);
        assert_eq!(c.nic, "Gigabit Ethernet");
        let r = ClusterSpec::ricc();
        assert_eq!(r.nodes, 100);
        assert!(r.link.bandwidth_bps > c.link.bandwidth_bps * 5.0);
        assert!(r.link.latency_ns < c.link.latency_ns);
    }

    #[test]
    fn two_sends_from_one_node_serialize() {
        let clock = SimClock::new();
        let f = Fabric::new(clock, ClusterSpec::cichlid(), 4);
        let r1 = f.reserve(0, 1, 1 << 20, 0);
        let r2 = f.reserve(0, 2, 1 << 20, 0);
        assert_eq!(r2.start, r1.end, "tx NIC is a serialized resource");
    }

    #[test]
    fn disjoint_pairs_transfer_concurrently() {
        let clock = SimClock::new();
        let f = Fabric::new(clock, ClusterSpec::cichlid(), 4);
        let r1 = f.reserve(0, 1, 1 << 20, 0);
        let r2 = f.reserve(2, 3, 1 << 20, 0);
        assert_eq!(r1.start, 0);
        assert_eq!(r2.start, 0, "independent NICs do not contend");
    }

    #[test]
    fn duplex_send_and_receive_overlap() {
        let clock = SimClock::new();
        let f = Fabric::new(clock, ClusterSpec::ricc(), 2);
        let r1 = f.reserve(0, 1, 1 << 20, 0);
        let r2 = f.reserve(1, 0, 1 << 20, 0);
        assert_eq!(r1.start, 0);
        assert_eq!(r2.start, 0, "full duplex: opposite directions are free");
    }

    #[test]
    fn loopback_is_fast_and_uncontended() {
        let clock = SimClock::new();
        let f = Fabric::new(clock, ClusterSpec::cichlid(), 2);
        let r = f.reserve(1, 1, 1 << 20, 0);
        let remote = f.reserve(0, 1, 1 << 20, 0);
        assert!(
            r.arrival < remote.arrival / 10,
            "loopback ≫ faster than GbE"
        );
    }

    #[test]
    #[should_panic(expected = "only")]
    fn oversubscribing_preset_panics() {
        let clock = SimClock::new();
        let _ = Fabric::new(clock, ClusterSpec::cichlid(), 16);
    }

    #[test]
    fn cxl_pairs_classify_and_outrun_the_nic() {
        let clock = SimClock::new();
        let f = Fabric::new(clock, ClusterSpec::cxl_pod(), 16);
        assert_eq!(f.fabric_class(1, 1), FabricClass::Loopback);
        assert_eq!(f.fabric_class(0, 3), FabricClass::Cxl(0));
        assert_eq!(f.fabric_class(4, 7), FabricClass::Cxl(1));
        assert_eq!(f.fabric_class(3, 4), FabricClass::Nic, "pool boundary");
        let pool = f.reserve_rma(0, 1, 1 << 20, 0);
        let nic = f.reserve(0, 1, 1 << 20, 0);
        assert!(
            pool.arrival * 5 < nic.arrival,
            "pool load/store ≫ faster than the NIC: {} vs {}",
            pool.arrival,
            nic.arrival
        );
    }

    #[test]
    fn cxl_pool_port_is_a_contended_resource() {
        let clock = SimClock::new();
        let f = Fabric::new(clock, ClusterSpec::cxl_pod(), 8);
        // Disjoint pairs inside one pool contend on the shared port...
        let r1 = f.reserve_rma(0, 1, 1 << 20, 0);
        let r2 = f.reserve_rma(2, 3, 1 << 20, 0);
        assert_eq!(r2.start, r1.end, "one load/store port per pool");
        // ...but a different pool's port is independent.
        let r3 = f.reserve_rma(4, 5, 1 << 20, 0);
        assert_eq!(r3.start, 0);
    }

    #[test]
    fn rma_faults_skip_random_drops_but_honor_node_down() {
        let clock = SimClock::new();
        let plan = FaultPlan::drops(7, 1.0).with_node_down(2, 50);
        let f = Fabric::with_faults(clock, ClusterSpec::cxl_pod(), 8, plan);
        // Co-located pair: 100% random drop plan does not touch loads.
        match f.rma_fault_decision(0, 1, 9, 10) {
            FaultOutcome::Deliver { .. } => {}
            other => panic!("CXL path must not random-drop: {other:?}"),
        }
        // Node death still poisons the pool path.
        match f.rma_fault_decision(0, 2, 9, 60) {
            FaultOutcome::Drop(DropReason::NodeDown) => {}
            other => panic!("dead node must fail window ops: {other:?}"),
        }
        // Cross-pool RMA rides the NIC and inherits the drop plan.
        match f.rma_fault_decision(0, 4, 9, 10) {
            FaultOutcome::Drop(_) => {}
            other => panic!("NIC-routed RMA composes with FaultPlan: {other:?}"),
        }
    }

    #[test]
    fn deferred_grants_resolve_same_instant_ties_canonically() {
        use std::sync::{Arc, Mutex as StdMutex};
        let clock = SimClock::new();
        let f = Fabric::new(clock.clone(), ClusterSpec::cichlid(), 4);
        let order: Arc<StdMutex<Vec<(NodeId, SimNs)>>> = Arc::new(StdMutex::new(Vec::new()));
        // Post in the "wrong" real-time order: node 2 first, node 0 second.
        for src in [2usize, 0] {
            let order = order.clone();
            f.reserve_deferred(
                src,
                1,
                7,
                1 << 20,
                0,
                Box::new(move |r| order.lock().unwrap().push((src, r.start))),
            );
        }
        assert_eq!(f.deferred_pending(), 2);
        f.pump(0); // not yet grantable: the clock has not passed instant 0
        assert_eq!(f.deferred_pending(), 2);
        f.pump(1);
        assert_eq!(f.deferred_pending(), 0);
        let got = order.lock().unwrap().clone();
        // Canonical (earliest, src, ..) order, not posting order: node 0
        // wins the shared rx timeline of node 1.
        assert_eq!(got[0], (0, 0), "lowest source granted first, backdated");
        assert_eq!(got[1].0, 2);
        assert!(got[1].1 > 0, "later grant queues behind on the rx NIC");
    }
}
