//! Cross-variant validation: every implementation must produce the same
//! physics as the single-threaded reference, and their relative timing
//! must reflect the paper's overlap story.

use clmpi::{PackMode, SystemConfig};
use himeno::{
    reference_jacobi, run_himeno, run_himeno_with_faults_mode, GridSize, HaloMode, HimenoConfig,
    Variant,
};
use minimpi::FaultPlan;
use simtime::ExecMode;

fn cfg(sys: SystemConfig, nodes: usize, iters: usize) -> HimenoConfig {
    HimenoConfig {
        size: GridSize::Xs,
        iters,
        sys,
        nodes,
        strategy: None,
        halo: Default::default(),
    }
}

fn reference_checksum(size: GridSize, iters: usize) -> (f64, f64) {
    let r = reference_jacobi(size, iters);
    let (mi, mj, mk) = size.dims();
    let mut sum = 0.0f64;
    for i in 1..mi - 1 {
        for j in 1..mj - 1 {
            for k in 1..mk - 1 {
                sum += r.p[(i * mj + j) * mk + k].abs() as f64;
            }
        }
    }
    (sum, r.gosa)
}

fn assert_matches_reference(variant: Variant, nodes: usize) {
    let iters = 4;
    let res = run_himeno(variant, cfg(SystemConfig::cichlid(), nodes, iters));
    let (ref_sum, ref_gosa) = reference_checksum(GridSize::Xs, iters);
    let rel_p = (res.checksum - ref_sum).abs() / ref_sum;
    let rel_g = (res.gosa - ref_gosa).abs() / ref_gosa;
    assert!(
        rel_p < 1e-10,
        "{} x{nodes}: checksum {} vs reference {}",
        variant.name(),
        res.checksum,
        ref_sum
    );
    assert!(
        rel_g < 1e-9,
        "{} x{nodes}: gosa {} vs reference {}",
        variant.name(),
        res.gosa,
        ref_gosa
    );
}

#[test]
fn serial_matches_reference_1_node() {
    assert_matches_reference(Variant::Serial, 1);
}

#[test]
fn serial_matches_reference_4_nodes() {
    assert_matches_reference(Variant::Serial, 4);
}

#[test]
fn hand_optimized_matches_reference_2_nodes() {
    assert_matches_reference(Variant::HandOptimized, 2);
}

#[test]
fn hand_optimized_matches_reference_4_nodes() {
    assert_matches_reference(Variant::HandOptimized, 4);
}

#[test]
fn clmpi_matches_reference_2_nodes() {
    assert_matches_reference(Variant::ClMpi, 2);
}

#[test]
fn clmpi_matches_reference_4_nodes() {
    assert_matches_reference(Variant::ClMpi, 4);
}

#[test]
fn clmpi_matches_reference_3_nodes_uneven_split() {
    assert_matches_reference(Variant::ClMpi, 3);
}

#[test]
fn gpu_aware_matches_reference_4_nodes() {
    assert_matches_reference(Variant::GpuAwareMpi, 4);
}

#[test]
fn gpu_aware_matches_reference_3_nodes() {
    assert_matches_reference(Variant::GpuAwareMpi, 3);
}

#[test]
fn degenerate_slabs_match_reference() {
    // 10 ranks over a 7-plane interior (base == 0): ranks 0–6 own a
    // single plane each — ha == 1, so the B half is empty, the whole
    // slab is one "A" kernel, and the same plane is sent in both
    // directions — and ranks 7–9 own zero planes. Every variant must
    // still reproduce the serial reference's physics, in both slab
    // shapes at once.
    let size = GridSize::Custom(9, 9, 17);
    let iters = 4;
    let (ref_sum, ref_gosa) = reference_checksum(size, iters);
    for variant in [
        Variant::Serial,
        Variant::HandOptimized,
        Variant::ClMpi,
        Variant::ClMpiBlocked,
        Variant::GpuAwareMpi,
    ] {
        // 5 ranks: n = [2,2,1,1,1] — a 2-plane slab neighbors a 1-plane
        // slab, covering the mixed overlap/degenerate edge protocol.
        for nodes in [5usize, 7, 10] {
            // Cichlid's cost model scaled out to admit the 10-rank world.
            let mut sys = SystemConfig::cichlid();
            sys.cluster.nodes = sys.cluster.nodes.max(nodes);
            let res = run_himeno(
                variant,
                HimenoConfig {
                    size,
                    iters,
                    sys,
                    nodes,
                    strategy: None,
                    halo: Default::default(),
                },
            );
            let rel_p = (res.checksum - ref_sum).abs() / ref_sum;
            let rel_g = (res.gosa - ref_gosa).abs() / ref_gosa;
            assert!(
                rel_p < 1e-10,
                "{} x{nodes} degenerate: checksum {} vs reference {}",
                variant.name(),
                res.checksum,
                ref_sum
            );
            assert!(
                rel_g < 1e-9,
                "{} x{nodes} degenerate: gosa {} vs reference {}",
                variant.name(),
                res.gosa,
                ref_gosa
            );
        }
    }
}

#[test]
fn gpu_aware_sits_between_serial_and_clmpi() {
    // §II's argument: GPU-aware MPI gets the optimized transfers (beats
    // a serial joint code) but keeps the host-blocking serialization
    // (loses to clMPI when communication matters).
    let iters = 6;
    let serial = run_himeno(Variant::Serial, cfg(SystemConfig::cichlid(), 4, iters));
    let gpu = run_himeno(Variant::GpuAwareMpi, cfg(SystemConfig::cichlid(), 4, iters));
    let cl = run_himeno(Variant::ClMpi, cfg(SystemConfig::cichlid(), 4, iters));
    assert!(
        gpu.gflops > serial.gflops,
        "gpu-aware {} > serial {}",
        gpu.gflops,
        serial.gflops
    );
    assert!(
        cl.gflops > gpu.gflops,
        "clMPI {} > gpu-aware {}",
        cl.gflops,
        gpu.gflops
    );
}

#[test]
fn overlap_beats_serial_on_cichlid_4_nodes() {
    // The Fig. 9(a) ordering at 4 nodes: serial < hand-optimized ≤ clMPI.
    let iters = 6;
    let serial = run_himeno(Variant::Serial, cfg(SystemConfig::cichlid(), 4, iters));
    let hand = run_himeno(
        Variant::HandOptimized,
        cfg(SystemConfig::cichlid(), 4, iters),
    );
    let cl = run_himeno(Variant::ClMpi, cfg(SystemConfig::cichlid(), 4, iters));
    assert!(
        hand.gflops > serial.gflops,
        "hand {} > serial {}",
        hand.gflops,
        serial.gflops
    );
    assert!(
        cl.gflops > hand.gflops,
        "clMPI {} > hand {} when communication is exposed",
        cl.gflops,
        hand.gflops
    );
}

#[test]
fn comp_comm_ratio_reported_by_serial() {
    let res = run_himeno(Variant::Serial, cfg(SystemConfig::cichlid(), 2, 3));
    assert!(res.comp_ns > 0);
    assert!(res.comm_ns > 0);
}

#[test]
fn single_node_variants_agree_on_gflops_scale() {
    // With no communication, all variants are compute-bound and should be
    // within a few percent of each other.
    let iters = 3;
    let s = run_himeno(Variant::Serial, cfg(SystemConfig::ricc(), 1, iters));
    let c = run_himeno(Variant::ClMpi, cfg(SystemConfig::ricc(), 1, iters));
    // On the tiny XS grid the clMPI variant pays one extra kernel launch
    // per iteration (two half-kernels vs one full kernel), which is a
    // visible fraction of a ~60 µs iteration; on M it vanishes.
    let ratio = s.gflops / c.gflops;
    assert!(
        (0.8..=1.25).contains(&ratio),
        "serial {} vs clMPI {} on one node",
        s.gflops,
        c.gflops
    );
}

#[test]
fn datatype_halo_is_bitwise_identical_in_both_exec_modes() {
    // The strided-face exchange (interior Subarray per plane) must not
    // change the physics at all: same decomposition, same arithmetic,
    // same summation order — so checksum and gosa are *bitwise* equal to
    // the contiguous-plane baseline, which itself matches the serial
    // reference. Verified under every pack mode and both schedulers.
    let iters = 4;
    let nodes = 4;
    let run = |halo: HaloMode, mode: ExecMode| {
        let mut c = cfg(SystemConfig::ricc(), nodes, iters);
        c.halo = halo;
        run_himeno_with_faults_mode(Variant::ClMpi, c, FaultPlan::none(), mode)
    };
    let (ref_sum, ref_gosa) = reference_checksum(GridSize::Xs, iters);
    let base = run(HaloMode::Plane, ExecMode::Threads);
    assert!((base.checksum - ref_sum).abs() / ref_sum < 1e-10);
    for pack in [
        PackMode::HostPack,
        PackMode::DevicePack,
        PackMode::PipelinedPack,
    ] {
        for exec in [ExecMode::Threads, ExecMode::Events] {
            let r = run(HaloMode::Datatype(pack), exec);
            assert_eq!(
                r.checksum.to_bits(),
                base.checksum.to_bits(),
                "{} halo / {exec:?}: checksum must be bitwise identical",
                pack.name()
            );
            assert_eq!(
                r.gosa.to_bits(),
                base.gosa.to_bits(),
                "{} halo / {exec:?}: gosa must be bitwise identical",
                pack.name()
            );
            assert!(
                (r.checksum - ref_sum).abs() / ref_sum < 1e-10
                    && (r.gosa - ref_gosa).abs() / ref_gosa < 1e-9,
                "{} halo / {exec:?}: must match the serial reference",
                pack.name()
            );
        }
    }
}

#[test]
fn device_pack_halo_beats_host_pack_halo() {
    // The interior face of an Xs plane is 31 noncontiguous rows, so the
    // host-pack path stages 31 PCIe hops per exchange while device-pack
    // runs one pack kernel and a single hop. Device-pack must win.
    // (Full-plane stays the default: for a face this small and nearly
    // dense, the extra pack/unpack kernel launches cost more than the
    // shell bytes they avoid sending.)
    let iters = 4;
    let time = |halo: HaloMode| {
        let mut c = cfg(SystemConfig::cichlid(), 4, iters);
        c.halo = halo;
        run_himeno(Variant::ClMpi, c).elapsed_ns
    };
    let host = time(HaloMode::Datatype(PackMode::HostPack));
    let device = time(HaloMode::Datatype(PackMode::DevicePack));
    assert!(
        device < host,
        "device-pack face ({device}) must beat host-pack face ({host})"
    );
}
