//! # himeno — the Himeno benchmark on the clMPI stack
//!
//! The paper's first evaluation workload (§V-C): a 19-point Jacobi stencil
//! over a 3-D pressure grid, 1-D domain decomposition along the slowest
//! axis, each rank's slab halved into a lower part **A** and an upper part
//! **B** so halo exchange for one half overlaps computation of the other
//! (paper Fig. 2/3).
//!
//! Three implementations, as measured in Fig. 9:
//!
//! * [`Variant::Serial`] — kernel, device→host reads, `MPI_Sendrecv`, and
//!   host→device writes all serialized (the paper's lower bound).
//! * [`Variant::HandOptimized`] — the two-queue overlap scheme of \[13\]:
//!   the host enqueues the A kernel, then performs the B-halo exchange
//!   with blocking staged (pinned) transfers, then the B kernel, then the
//!   A-halo exchange. Overlap works, but the host thread is tied up in
//!   each exchange (the Fig. 4(b) limitation).
//! * [`Variant::ClMpi`] — the Fig. 6 rewrite: kernels and
//!   `enqueue_send_buffer`/`enqueue_recv_buffer` commands chained purely
//!   by events; the host only calls `clFinish` at iteration ends, and the
//!   runtime picks the transfer strategy (mapped on Cichlid, pinned/
//!   pipelined on RICC).
//!
//! Numerics are real: every variant produces the same pressure field as
//! the single-threaded [`reference_jacobi`] solver (bitwise for `p`, tolerance
//! for the `gosa` reduction), which the tests verify.

mod grid;
mod recover;
mod reference;
mod run;

pub use grid::{init_planes, GridSize, HimenoGrid, FLOPS_PER_POINT, OMEGA};
pub use recover::{run_himeno_recover, RecoverConfig, RecoverResult};
pub use reference::{checksum, reference_jacobi};
pub use run::{
    run_himeno, run_himeno_with_faults, run_himeno_with_faults_mode, HaloMode, HimenoConfig,
    HimenoResult, Variant,
};
