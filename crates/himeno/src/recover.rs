//! Rank-failure recovery for the Himeno solver: the full ULFM-style
//! loop over the clMPI stack.
//!
//! The run proceeds in *epochs*. Epoch 0 is the normal solve on the
//! world communicator, with a crash-consistent device checkpoint
//! ([`clmpi::ClMpi::enqueue_checkpoint_buffer`]) of every rank's slab to
//! shared storage every `ckpt_every` iterations. The per-iteration
//! residual allreduce doubles as the failure detector: when a node is
//! killed, every survivor's next collective or halo exchange poisons
//! with a bounded-time error instead of hanging.
//!
//! On the first error, a survivor runs the recovery protocol:
//!
//! 1. quiesce its runtime ([`clmpi::ClMpi::shutdown`] — in-flight
//!    machines abort-and-poison, nothing leaks),
//! 2. classify ([`clmpi::ClMpi::failed_ranks`]), notify, and revoke,
//! 3. `shrink` to the dense survivor communicator,
//! 4. agree — bitwise-AND over the survivors — on the newest checkpoint
//!    slot whose files *all* validate (a slot torn by the kill never
//!    wins, because [`clmpi::decode_checkpoint`] rejects it somewhere),
//! 5. rebuild a fresh runtime on the shrunken communicator, re-decompose
//!    the grid over the survivors, reassemble each new slab from the
//!    epoch-0 checkpoints ([`clmpi::ClMpi::enqueue_restore_buffer`]),
//! 6. resume the solve from the agreed slot (epoch 1).
//!
//! The killed rank observes its own death (every operation it issues
//! errors once virtual time passes the kill instant), shuts its runtime
//! down, and exits — it never joins the shrink.
//!
//! Restored state is bitwise-identical to the checkpointed state, so a
//! recovered run converges to the same residual as a fault-free one up
//! to f64 summation order (the survivor decomposition differs).
//!
//! A kill inside the *last* iteration can leave some survivors clean
//! (their machines finished before the fast-fail check saw the death)
//! while others fail, so whether to recover is itself decided by a
//! fault-tolerant agreement over every survivor's verdict — it doubles
//! as the final synchronization of a clean run. Scope: kills that land
//! after the warm-up barrier (the plain-MPI barrier that aligns rank
//! start times is not fault-tolerant).

use std::sync::{Arc, OnceLock};

use clmpi::{decode_checkpoint, ClMpi, ReduceOp, SimStorage, SystemConfig};
use minicl::{Buffer, ClError, CommandQueue};
use minimpi::datatype::{bytes_to_f32, f32_as_bytes};
use minimpi::{run_world_faulty, FaultPlan, Process, Tag};
use simtime::plock::Mutex;
use simtime::SimNs;

use crate::grid::{GridSize, HimenoGrid};
use crate::run::{enqueue_half_kernel, exchange_clmpi, HimenoConfig, Slab, TAG_DOWN, TAG_UP};

/// User tag of the per-iteration residual allreduce.
const TAG_GOSA: Tag = 7;

/// Patience for the post-failure agreement rounds (virtual time). Long
/// enough that the slowest survivor — one waiting out a collective
/// deadline before it notices the failure — still joins.
const PATIENCE: SimNs = 5_000_000_000;

/// Parameters of a recoverable Himeno run.
#[derive(Clone)]
pub struct RecoverConfig {
    /// Grid size.
    pub size: GridSize,
    /// Timed Jacobi iterations.
    pub iters: usize,
    /// System preset.
    pub sys: SystemConfig,
    /// Initial number of ranks/nodes.
    pub nodes: usize,
    /// Checkpoint after every `ckpt_every`-th iteration (the slab of
    /// iteration `t` is checkpointed when `(t + 1) % ckpt_every == 0`).
    pub ckpt_every: usize,
}

/// Outcome of a recoverable run.
#[derive(Debug, Clone)]
pub struct RecoverResult {
    /// Final-iteration residual (the device allreduce every survivor
    /// holds a copy of).
    pub gosa: f64,
    /// Order-tolerant checksum of the final interior pressure field,
    /// summed over survivors.
    pub checksum: f64,
    /// Ranks still alive at the end.
    pub survivors: usize,
    /// True if the run went through the shrink-and-resume protocol.
    pub recovered: bool,
    /// Checkpoint slot (iteration index) the survivors resumed *after*;
    /// `None` if they restarted from the initial state (or never
    /// recovered at all).
    pub resumed_from: Option<usize>,
    /// Virtual time of the timed loop, max over survivors.
    pub elapsed_ns: SimNs,
    /// Activity trace of the run.
    pub trace: simtime::Trace,
    /// Fabric-level fault counters.
    pub fault_counts: minimpi::FaultCounts,
    /// clMPI runtime fault counters summed over survivors (both the
    /// epoch-0 and the rebuilt runtime).
    pub transfer_faults: clmpi::FaultStats,
}

enum RankOut {
    /// This rank's node was killed; it shut down and exited.
    Dead,
    Alive {
        gosa: f64,
        checksum: f64,
        recovered: bool,
        resumed_from: Option<usize>,
        loop_ns: SimNs,
        faults: clmpi::FaultStats,
    },
}

/// Run the recoverable Himeno solve under `plan`. With a
/// [`FaultPlan::none`] plan this is an ordinary (checkpointing) solve;
/// with a node-kill schedule the survivors shrink, restore, and finish.
pub fn run_himeno_recover(cfg: RecoverConfig, plan: FaultPlan) -> RecoverResult {
    let cluster = cfg.sys.cluster.clone();
    let nodes = cfg.nodes;
    let cfg = Arc::new(cfg);
    // One storage instance shared by every rank: the shared-PFS model
    // (checkpoints must survive their writer's node).
    let storage: Arc<OnceLock<SimStorage>> = Arc::new(OnceLock::new());
    let res = run_world_faulty(cluster, nodes, plan, move |p: Process| {
        let storage = storage
            .get_or_init(|| SimStorage::node_local_disk(p.clock().clone()))
            .clone();
        rank_recover(&cfg, storage, p)
    });
    let mut out = RecoverResult {
        gosa: 0.0,
        checksum: 0.0,
        survivors: 0,
        recovered: false,
        resumed_from: None,
        elapsed_ns: 1,
        trace: res.trace,
        fault_counts: res.fault_counts,
        transfer_faults: clmpi::FaultStats::default(),
    };
    for o in &res.outputs {
        let RankOut::Alive {
            gosa,
            checksum,
            recovered,
            resumed_from,
            loop_ns,
            faults,
        } = o
        else {
            continue;
        };
        out.survivors += 1;
        // Every survivor holds the same allreduced residual.
        out.gosa = *gosa;
        out.checksum += checksum;
        out.recovered |= recovered;
        out.resumed_from = out.resumed_from.or(*resumed_from);
        out.elapsed_ns = out.elapsed_ns.max(*loop_ns);
        out.transfer_faults = out.transfer_faults.merge(*faults);
    }
    out
}

fn ckpt_path(epoch: usize, grank: usize, iter: usize) -> String {
    format!("ckpt/e{epoch}/r{grank}/i{iter}")
}

fn interior_checksum(buf: &Buffer, slab: &Slab) -> f64 {
    buf.read(|d| {
        let f = d.as_f32();
        let plane = slab.mj * slab.mk;
        let mut sum = 0.0f64;
        for i in 1..=slab.n {
            for j in 1..slab.mj - 1 {
                for k in 1..slab.mk - 1 {
                    sum += f[i * plane + j * slab.mk + k].abs() as f64;
                }
            }
        }
        sum
    })
}

/// One solver iteration on whichever communicator `rt` is built on:
/// full-slab kernel, halo exchanges of the freshly-written buffer, the
/// residual allreduce (the failure detector), and — on checkpoint
/// iterations — a crash-consistent slab checkpoint. Any rank failure
/// surfaces here as an `Err` within bounded virtual time.
#[allow(clippy::too_many_arguments)]
fn step_iter(
    rt: &ClMpi,
    q: &CommandQueue,
    p: &Process,
    slab: &Slab,
    bufs: &[Buffer; 2],
    gosa_acc: &Arc<Vec<Mutex<f64>>>,
    gbuf: &Buffer,
    storage: &SimStorage,
    t: usize,
    epoch: usize,
    grank: usize,
    ckpt_every: usize,
) -> Result<f64, ClError> {
    let (old, new) = (&bufs[t % 2], &bufs[(t + 1) % 2]);
    let ek = enqueue_half_kernel(
        q,
        "jacobi",
        old,
        new,
        slab,
        1,
        slab.n + 1,
        gosa_acc.clone(),
        t,
        &[],
    );
    ek.wait(&p.actor); // kernels are local; they never fail
                       // Both exchanges enqueued before any wait (non-blocking pairs).
    let x_down = exchange_clmpi(rt, q, p, new, slab, slab.down, 1, 0, TAG_DOWN, &[], None);
    let x_up = exchange_clmpi(
        rt,
        q,
        p,
        new,
        slab,
        slab.up,
        slab.n,
        slab.n + 1,
        TAG_UP,
        &[],
        None,
    );
    for e in x_down.iter().chain(x_up.iter()) {
        e.wait_result(&p.actor)?;
    }
    // Residual allreduce: one f64 cell through the device collective.
    let local = *gosa_acc[t].lock();
    gbuf.store(0, &local.to_le_bytes())
        .expect("8-byte gosa cell");
    let ea = rt.enqueue_allreduce_buffer(q, gbuf, 0, 1, ReduceOp::Sum, TAG_GOSA, &[], &p.actor)?;
    ea.wait_result(&p.actor)?;
    let g = f64::from_le_bytes(
        gbuf.load(0, 8)
            .expect("8-byte gosa cell")
            .try_into()
            .expect("sliced"),
    );
    if (t + 1).is_multiple_of(ckpt_every) {
        let ec = rt.enqueue_checkpoint_buffer(
            q,
            new,
            0,
            slab.slab_bytes(),
            storage,
            ckpt_path(epoch, grank, t),
            &[],
            &p.actor,
        )?;
        ec.wait_result(&p.actor)?;
    }
    Ok(g)
}

fn rank_recover(cfg: &RecoverConfig, storage: SimStorage, p: Process) -> RankOut {
    let hcfg = HimenoConfig {
        size: cfg.size,
        iters: cfg.iters,
        sys: cfg.sys.clone(),
        nodes: cfg.nodes,
        strategy: None,
        halo: Default::default(),
    };
    let me = p.rank();
    let rt = ClMpi::new(&p, cfg.sys.clone());
    let stats = rt.enable_stats();
    let ctx = rt.context().clone();
    let slab = Slab::new(&hcfg, me);
    let start = Slab::global_start(&hcfg, me);
    let init = {
        let g = HimenoGrid::new(cfg.size);
        g.planes(start - 1, start + slab.n + 1).to_vec()
    };
    let bufs = [
        ctx.create_buffer(slab.slab_bytes()),
        ctx.create_buffer(slab.slab_bytes()),
    ];
    for b in &bufs {
        b.store(0, f32_as_bytes(&init)).expect("slab fits");
    }
    let gosa_acc: Arc<Vec<Mutex<f64>>> =
        Arc::new((0..cfg.iters).map(|_| Mutex::new(0.0)).collect());
    let gbuf = ctx.create_buffer(8);
    let q = ctx.create_queue(0, format!("r{me}q"));
    q.set_trace(p.comm.world().trace().clone(), format!("r{me}.gpu"));

    p.comm.barrier(&p.actor);
    let t0 = p.actor.now_ns();

    // ---- Epoch 0: the normal solve ------------------------------------
    let mut failed_at = None;
    let mut last_gosa = 0.0;
    for t in 0..cfg.iters {
        match step_iter(
            &rt,
            &q,
            &p,
            &slab,
            &bufs,
            &gosa_acc,
            &gbuf,
            &storage,
            t,
            0,
            me,
            cfg.ckpt_every,
        ) {
            Ok(g) => last_gosa = g,
            Err(_) => {
                failed_at = Some(t);
                break;
            }
        }
    }

    // ---- Quiesce, then decide — by agreement — whether to recover -------
    rt.shutdown(&p.actor);
    if p.comm.world().node_down_at(me, p.actor.now_ns()) {
        // The error was this rank's own death. Exit without joining the
        // survivors' protocol.
        return RankOut::Dead;
    }
    // A kill inside the *last* iteration can leave some survivors clean
    // while others fail, so whether to recover must itself be agreed on
    // (the agreement tolerates the dead rank and doubles as the final
    // synchronization of a clean run).
    let clean = p
        .comm
        .agree(&p.actor, u64::from(failed_at.is_none()), PATIENCE)
        .expect("completion agreement");
    if clean == 1 {
        let loop_ns = p.actor.now_ns() - t0;
        let checksum = interior_checksum(&bufs[cfg.iters % 2], &slab);
        return RankOut::Alive {
            gosa: last_gosa,
            checksum,
            recovered: false,
            resumed_from: None,
            loop_ns,
            faults: stats.faults(),
        };
    }

    // ---- Recovery: classify, revoke, shrink -----------------------------
    for r in rt.failed_ranks(p.actor.now_ns()) {
        rt.notify_proc_failure(r);
    }
    rt.revoke();
    let sub = rt
        .shrink_comm(&p.actor, PATIENCE)
        .expect("survivors agree on the shrunken communicator");

    // ---- Agree on the newest globally-valid checkpoint slot ------------
    let slots: Vec<usize> = (0..cfg.iters)
        .filter(|t| (t + 1) % cfg.ckpt_every == 0)
        .collect();
    assert!(slots.len() <= 64, "agreement mask is one u64");
    let mut mask = 0u64;
    for (j, &slot) in slots.iter().enumerate() {
        let all_ok = (0..cfg.nodes).all(|g| {
            let s0 = Slab::new(&hcfg, g);
            match storage.read_file(&ckpt_path(0, g, slot)) {
                Some(f) => matches!(decode_checkpoint(&f), Ok(pl) if pl.len() == s0.slab_bytes()),
                None => false,
            }
        });
        if all_ok {
            mask |= 1 << j;
        }
    }
    let agreed = sub
        .agree(&p.actor, mask, PATIENCE)
        .expect("survivors agree on the resume slot");
    let resume_slot = (0..64)
        .rev()
        .find(|b| agreed >> b & 1 == 1)
        .map(|b| slots[b]);
    let resume_iter = resume_slot.map_or(0, |s| s + 1);

    // ---- Rebuild on the survivor communicator ---------------------------
    let rt2 = ClMpi::with_comm(sub.clone(), cfg.sys.clone());
    let stats2 = rt2.enable_stats();
    let ctx2 = rt2.context().clone();
    let me2 = sub.rank();
    let cfg2 = HimenoConfig {
        nodes: sub.size(),
        ..hcfg.clone()
    };
    let slab2 = Slab::new(&cfg2, me2);
    let start2 = Slab::global_start(&cfg2, me2);
    let init2 = {
        let g = HimenoGrid::new(cfg.size);
        g.planes(start2 - 1, start2 + slab2.n + 1).to_vec()
    };
    let bufs2 = [
        ctx2.create_buffer(slab2.slab_bytes()),
        ctx2.create_buffer(slab2.slab_bytes()),
    ];
    for b in &bufs2 {
        b.store(0, f32_as_bytes(&init2)).expect("slab fits");
    }
    let gbuf2 = ctx2.create_buffer(8);
    let q2 = ctx2.create_queue(0, format!("r{me}q2"));
    q2.set_trace(p.comm.world().trace().clone(), format!("r{me}.gpu"));

    if let Some(slot) = resume_slot {
        restore_slab(
            cfg,
            &hcfg,
            &rt2,
            &q2,
            &p,
            &storage,
            slot,
            &slab2,
            start2,
            init2,
            &bufs2[resume_iter % 2],
        );
    }
    // Residual cells of the iterations being recomputed may hold partial
    // sums from the aborted epoch; recompute from zero.
    for t in resume_iter..cfg.iters {
        *gosa_acc[t].lock() = 0.0;
    }

    // ---- Epoch 1: resume ------------------------------------------------
    let mut last2 = last_gosa;
    for t in resume_iter..cfg.iters {
        last2 = step_iter(
            &rt2,
            &q2,
            &p,
            &slab2,
            &bufs2,
            &gosa_acc,
            &gbuf2,
            &storage,
            t,
            1,
            me,
            cfg.ckpt_every,
        )
        .expect("recovered run completes");
    }
    rt2.shutdown(&p.actor);
    sub.barrier(&p.actor);
    let loop_ns = p.actor.now_ns() - t0;
    let checksum = interior_checksum(&bufs2[cfg.iters % 2], &slab2);
    RankOut::Alive {
        gosa: last2,
        checksum,
        recovered: true,
        resumed_from: resume_slot,
        loop_ns,
        faults: stats.faults().merge(stats2.faults()),
    }
}

/// Reassemble this survivor's new slab (decomposed over the *shrunken*
/// world) from the epoch-0 checkpoints (decomposed over the *original*
/// world): every global interior plane is restored from its old owner's
/// validated checkpoint via `enqueue_restore_buffer`; shell and physical
/// boundary planes keep their initial values (the stencil never writes
/// them). The result lands in `target` bitwise-identical to the state
/// the old world checkpointed.
#[allow(clippy::too_many_arguments)]
fn restore_slab(
    cfg: &RecoverConfig,
    hcfg: &HimenoConfig,
    rt2: &ClMpi,
    q2: &CommandQueue,
    p: &Process,
    storage: &SimStorage,
    slot: usize,
    slab2: &Slab,
    start2: usize,
    init2: Vec<f32>,
    target: &Buffer,
) {
    let mut assembled = init2;
    let plane_f32 = slab2.mj * slab2.mk;
    let scratch_bytes = (0..cfg.nodes)
        .map(|g| Slab::new(hcfg, g).slab_bytes())
        .max()
        .expect("at least one rank");
    let scratch = rt2.context().create_buffer(scratch_bytes);
    for g in 0..cfg.nodes {
        let s0 = Slab::new(hcfg, g);
        let gs0 = Slab::global_start(hcfg, g);
        // Intersection of old rank g's interior planes with the planes
        // (ghosts included) the new slab needs.
        let lo = (start2 - 1).max(gs0);
        let hi = (start2 + slab2.n + 1).min(gs0 + s0.n);
        if lo >= hi {
            continue;
        }
        let e = rt2
            .enqueue_restore_buffer(
                q2,
                &scratch,
                0,
                s0.slab_bytes(),
                storage,
                ckpt_path(0, g, slot),
                &[],
                &p.actor,
            )
            .expect("enqueue restore");
        e.wait_result(&p.actor).expect("agreed checkpoint restores");
        let payload = scratch.load(0, s0.slab_bytes()).expect("range checked");
        let f = bytes_to_f32(&payload);
        for gp in lo..hi {
            let src = (gp - (gs0 - 1)) * plane_f32;
            let dst = (gp - (start2 - 1)) * plane_f32;
            assembled[dst..dst + plane_f32].copy_from_slice(&f[src..src + plane_f32]);
        }
    }
    target
        .store(0, f32_as_bytes(&assembled))
        .expect("slab fits");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference_jacobi;

    fn reference_checksum(size: GridSize, iters: usize) -> (f64, f64) {
        let r = reference_jacobi(size, iters);
        let (mi, mj, mk) = size.dims();
        let mut sum = 0.0f64;
        for i in 1..mi - 1 {
            for j in 1..mj - 1 {
                for k in 1..mk - 1 {
                    sum += r.p[(i * mj + j) * mk + k].abs() as f64;
                }
            }
        }
        (sum, r.gosa)
    }

    fn cfg(nodes: usize, iters: usize) -> RecoverConfig {
        RecoverConfig {
            size: GridSize::Xs,
            iters,
            sys: SystemConfig::cichlid(),
            nodes,
            ckpt_every: 2,
        }
    }

    #[test]
    fn fault_free_run_matches_reference() {
        let iters = 4;
        let res = run_himeno_recover(cfg(3, iters), FaultPlan::none());
        assert_eq!(res.survivors, 3);
        assert!(!res.recovered);
        assert_eq!(res.resumed_from, None);
        let (ref_sum, ref_gosa) = reference_checksum(GridSize::Xs, iters);
        assert!(
            (res.checksum - ref_sum).abs() / ref_sum < 1e-10,
            "checksum {} vs reference {ref_sum}",
            res.checksum
        );
        assert!(
            (res.gosa - ref_gosa).abs() / ref_gosa < 1e-9,
            "gosa {} vs reference {ref_gosa}",
            res.gosa
        );
    }

    #[test]
    fn kill_mid_run_shrinks_restores_and_converges() {
        let iters = 6;
        // Probe the fault-free schedule, then kill rank 1 mid-loop.
        let probe = run_himeno_recover(cfg(4, iters), FaultPlan::none());
        let t_kill = probe.elapsed_ns / 2;
        let res = run_himeno_recover(cfg(4, iters), FaultPlan::none().with_node_down(1, t_kill));
        assert_eq!(res.survivors, 3, "one rank died");
        assert!(res.recovered, "survivors went through shrink+restore");
        assert!(
            res.resumed_from.is_some(),
            "at least one checkpoint slot was globally valid"
        );
        assert!(res.transfer_faults.proc_failures > 0);
        let (ref_sum, ref_gosa) = reference_checksum(GridSize::Xs, iters);
        assert!(
            (res.checksum - ref_sum).abs() / ref_sum < 1e-10,
            "checksum {} vs reference {ref_sum}",
            res.checksum
        );
        assert!(
            (res.gosa - ref_gosa).abs() / ref_gosa < 1e-9,
            "gosa {} vs reference {ref_gosa}",
            res.gosa
        );
    }

    #[test]
    fn kill_before_first_checkpoint_restarts_from_init() {
        let iters = 4;
        // Kill inside iteration 0 — after the warm-up barrier (kills
        // must land in the timed loop) but before any checkpoint slot
        // completes: the agreement mask comes back empty and the
        // survivors restart from the initial state.
        let probe = run_himeno_recover(cfg(3, iters), FaultPlan::none());
        let t_kill = probe.elapsed_ns / 8;
        let res = run_himeno_recover(cfg(3, iters), FaultPlan::none().with_node_down(2, t_kill));
        assert_eq!(res.survivors, 2);
        assert!(res.recovered);
        assert_eq!(
            res.resumed_from, None,
            "no slot survived such an early kill"
        );
        let (ref_sum, ref_gosa) = reference_checksum(GridSize::Xs, iters);
        assert!(
            (res.checksum - ref_sum).abs() / ref_sum < 1e-10,
            "checksum {} vs reference {ref_sum}",
            res.checksum
        );
        assert!((res.gosa - ref_gosa).abs() / ref_gosa < 1e-9);
    }

    #[test]
    #[ignore = "Himeno M acceptance run: minutes in debug builds; run with --release"]
    fn himeno_m_kill_and_recover_acceptance() {
        let c = RecoverConfig {
            size: GridSize::M,
            iters: 4,
            sys: SystemConfig::ricc(),
            nodes: 4,
            ckpt_every: 2,
        };
        let probe = run_himeno_recover(c.clone(), FaultPlan::none());
        let t_kill = probe.elapsed_ns / 2;
        let res = run_himeno_recover(c, FaultPlan::none().with_node_down(2, t_kill));
        assert_eq!(res.survivors, 3);
        assert!(res.recovered);
        let (ref_sum, ref_gosa) = reference_checksum(GridSize::M, 4);
        assert!((res.checksum - ref_sum).abs() / ref_sum < 1e-10);
        assert!((res.gosa - ref_gosa).abs() / ref_gosa < 1e-9);
    }
}
