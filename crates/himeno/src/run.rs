//! The three distributed Himeno implementations (paper Fig. 1/2/6).
//!
//! ## Decomposition (paper Fig. 3)
//!
//! Global interior planes are split contiguously along the first axis.
//! Each rank's slab has `n` interior planes plus ghost planes at local
//! index `0` (from the lower neighbor) and `n+1` (from the upper one).
//! The slab is halved: **B** = lower planes `[1, ha)`, **A** = upper
//! planes `[ha, n+1)` ("the top plane of A and the bottom plane of B are
//! halo regions"). Even ranks compute A first, odd ranks B first, so each
//! phase pairs neighbors exchanging the same boundary.
//!
//! ## Buffering
//!
//! Double-buffered pressure (`old`/`new` swap each iteration): kernels
//! read `old` and write `new`, halo exchanges carry freshly-written
//! boundary planes into the ghost planes of the same buffer generation.
//! All three variants perform identical arithmetic, so their pressure
//! fields match the single-threaded reference bitwise.

use std::sync::Arc;

use clmpi::{ClMpi, PackMode, SystemConfig, TransferStrategy};
use minicl::{Buffer, CommandQueue, Event, HostBuffer};
use minimpi::{run_world_faulty_mode, CommittedType, DerivedType, FaultPlan, Process, Tag};
use simtime::plock::Mutex;
use simtime::SimNs;

use crate::grid::{jacobi_sweep, GridSize, BYTES_PER_POINT, FLOPS_PER_POINT};

pub(crate) const TAG_DOWN: Tag = 100; // payload travels towards rank 0
pub(crate) const TAG_UP: Tag = 101; // payload travels towards rank P-1

/// Which implementation to run (paper §V-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Everything serialized (Fig. 1 structure).
    Serial,
    /// Two-queue host-managed overlap (Fig. 2, from \[13\]).
    HandOptimized,
    /// Event-chained clMPI commands (Fig. 6).
    ClMpi,
    /// Ablation: clMPI commands, but the host waits for every exchange at
    /// each iteration end — reintroducing the Fig. 4(b) serialization the
    /// event chains are meant to remove.
    ClMpiBlocked,
    /// Comparator from the paper's §II related work: GPU-aware MPI
    /// (cudaMPI / MPI-ACC / MVAPICH2-GPU style). MPI calls take device
    /// buffers and use the optimized transfer paths, but run on the host
    /// thread, which must first block on the producing kernel's event.
    GpuAwareMpi,
}

impl Variant {
    /// Display name used by the harnesses.
    pub fn name(self) -> &'static str {
        match self {
            Variant::Serial => "serial",
            Variant::HandOptimized => "hand-optimized",
            Variant::ClMpi => "clMPI",
            Variant::ClMpiBlocked => "clMPI-blocked",
            Variant::GpuAwareMpi => "gpu-aware-mpi",
        }
    }
}

/// How the clMPI variant describes a halo face to the runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HaloMode {
    /// Exchange the full boundary plane as one contiguous buffer region
    /// (shell bytes included). This is the baseline path and reproduces
    /// the historical behavior bit-for-bit.
    #[default]
    Plane,
    /// Describe the face as an interior `Subarray` derived datatype over
    /// the plane and let the runtime pack it — host-gather or on-device
    /// pack kernel per [`PackMode`]. Bit-identical physics: the stencil
    /// only ever reads the ghost plane's interior, and the shell bytes
    /// the plane path would re-send are init values both ranks already
    /// share (kernels never write plane shells).
    Datatype(PackMode),
}

/// Parameters of one Himeno run.
#[derive(Clone)]
pub struct HimenoConfig {
    /// Grid size (the paper uses M).
    pub size: GridSize,
    /// Timed Jacobi iterations.
    pub iters: usize,
    /// System preset (Cichlid or RICC).
    pub sys: SystemConfig,
    /// Number of ranks/nodes.
    pub nodes: usize,
    /// Force a clMPI transfer strategy (ablation); `None` = Auto.
    pub strategy: Option<TransferStrategy>,
    /// Halo-face description for the clMPI variants (other variants
    /// always stage full planes through the host).
    pub halo: HaloMode,
}

/// Measured output of one run.
#[derive(Debug, Clone)]
pub struct HimenoResult {
    /// Sustained GFLOPS over the timed loop (the Fig. 9 metric).
    pub gflops: f64,
    /// Virtual time of the timed loop.
    pub elapsed_ns: SimNs,
    /// Final-iteration residual (summed over ranks).
    pub gosa: f64,
    /// Order-tolerant checksum of the final interior pressure field.
    pub checksum: f64,
    /// Σ of kernel device time per iteration, max over ranks (serial
    /// variant only; used for the Fig. 9(a) comp/comm ratio annotation).
    pub comp_ns: SimNs,
    /// Σ of host-side communication time, max over ranks (serial only).
    pub comm_ns: SimNs,
    /// Activity trace of the run (GPU lanes always recorded; comm lanes
    /// recorded by the clMPI runtime) — renders the Fig. 4 timelines.
    pub trace: simtime::Trace,
    /// Fabric-level fault counters (all zero on a perfect fabric).
    pub fault_counts: minimpi::FaultCounts,
    /// clMPI runtime fault/retry counters, summed over ranks (all zero
    /// on a perfect fabric).
    pub transfer_faults: clmpi::FaultStats,
    /// Scheduler machine transitions over the whole run (simulator
    /// self-throughput numerator; mode-independent).
    pub sched_events: u64,
}

pub(crate) struct Slab {
    /// Interior planes owned by this rank.
    pub(crate) n: usize,
    /// First local plane of the upper half A (`B = [1, ha)`,
    /// `A = [ha, n+1)`).
    pub(crate) ha: usize,
    pub(crate) mj: usize,
    pub(crate) mk: usize,
    pub(crate) plane_bytes: usize,
    pub(crate) down: Option<usize>,
    pub(crate) up: Option<usize>,
}

impl Slab {
    pub(crate) fn new(cfg: &HimenoConfig, rank: usize) -> Self {
        let (mi, mj, mk) = cfg.size.dims();
        let interior = mi - 2;
        let p = cfg.nodes;
        let base = interior / p;
        let rem = interior % p;
        // Worlds larger than the interior plane count are legal (scale
        // runs): ranks past the remainder own zero planes, compute
        // nothing, and have no neighbors. `n` is non-increasing in rank,
        // so the zero-plane ranks form a contiguous tail and the slab
        // chain stays connected. A rank's up-neighbor exists only if that
        // neighbor owns at least one plane.
        let n = base + usize::from(rank < rem);
        let up_has_planes = base > 0 || rank + 1 < rem;
        Slab {
            n,
            ha: n / 2 + 1,
            mj,
            mk,
            plane_bytes: mj * mk * 4,
            down: (rank > 0 && n > 0).then(|| rank - 1),
            up: (n > 0 && rank + 1 < p && up_has_planes).then(|| rank + 1),
        }
    }

    pub(crate) fn global_start(cfg: &HimenoConfig, rank: usize) -> usize {
        let (mi, _, _) = cfg.size.dims();
        let interior = mi - 2;
        let p = cfg.nodes;
        let base = interior / p;
        let rem = interior % p;
        1 + rank * base + rank.min(rem)
    }

    pub(crate) fn slab_bytes(&self) -> usize {
        (self.n + 2) * self.plane_bytes
    }

    pub(crate) fn plane_off(&self, local_plane: usize) -> usize {
        local_plane * self.plane_bytes
    }
}

/// Enqueue one half-sweep kernel; the body performs the real stencil and
/// records the partial residual into `gosa_acc[iter]`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn enqueue_half_kernel(
    q: &CommandQueue,
    name: &'static str,
    old: &Buffer,
    new: &Buffer,
    slab: &Slab,
    lo: usize,
    hi: usize,
    gosa_acc: Arc<Vec<Mutex<f64>>>,
    iter: usize,
    waits: &[Event],
) -> Event {
    let (mj, mk) = (slab.mj, slab.mk);
    let points = (hi - lo) * (mj - 2) * (mk - 2);
    let cost = q.device().spec().stencil_kernel_ns(points, BYTES_PER_POINT);
    let old = old.clone();
    let new = new.clone();
    q.enqueue_kernel(name, cost, waits, move || {
        let g =
            old.read(|o| new.write(|n| jacobi_sweep(o.as_f32(), n.as_f32_mut(), mj, mk, lo, hi)));
        *gosa_acc[iter].lock() += g;
    })
}

/// Host-side staged halo exchange (serial & hand-optimized variants):
/// blocking device→host read of `send_plane`, `MPI_Sendrecv`, blocking
/// host→device write into `ghost_plane`. Stages through reusable pinned
/// buffers, exactly the conventional joint-programming pattern of Fig. 1.
#[allow(clippy::too_many_arguments)]
fn host_exchange(
    p: &Process,
    q: &CommandQueue,
    buf: &Buffer,
    slab: &Slab,
    neighbor: Option<usize>,
    send_plane: usize,
    ghost_plane: usize,
    send_tag: Tag,
    recv_tag: Tag,
    stage: &HostBuffer,
) {
    let Some(nb) = neighbor else { return };
    let t0 = p.actor.now_ns();
    q.enqueue_read_buffer(
        &p.actor,
        buf,
        true,
        slab.plane_off(send_plane),
        slab.plane_bytes,
        stage,
        0,
        &[],
    )
    .expect("read boundary plane");
    let out = stage.to_vec();
    let got = p
        .comm
        .sendrecv(&p.actor, nb, send_tag, &out, Some(nb), Some(recv_tag));
    assert_eq!(got.data.len(), slab.plane_bytes, "halo plane size");
    stage.fill_from(&got.data);
    q.enqueue_write_buffer(
        &p.actor,
        buf,
        true,
        slab.plane_off(ghost_plane),
        slab.plane_bytes,
        stage,
        0,
        &[],
    )
    .expect("write ghost plane");
    // The whole staged exchange blocks the host, so one comm-lane span
    // covers it; this is what the overlap accounting (and Fig. 4 a/b)
    // sees as the variant's exposed communication.
    p.comm.world().trace().record(
        format!("r{}.comm", p.rank()),
        format!("d2h+sendrecv⇄{nb}+h2d"),
        t0,
        p.actor.now_ns(),
    );
}

/// Run `variant` under `cfg`; aggregates per-rank measurements.
pub fn run_himeno(variant: Variant, cfg: HimenoConfig) -> HimenoResult {
    run_himeno_with_faults(variant, cfg, FaultPlan::none())
}

/// [`run_himeno`] on a faulty fabric: `plan` is attached to every link
/// (scope it with [`clmpi::data_plane_faults`] to spare the plain-MPI
/// halo control traffic). With a [`FaultPlan::none`] plan this is
/// exactly `run_himeno`.
pub fn run_himeno_with_faults(
    variant: Variant,
    cfg: HimenoConfig,
    plan: FaultPlan,
) -> HimenoResult {
    run_himeno_with_faults_mode(variant, cfg, plan, simtime::ExecMode::from_env())
}

/// [`run_himeno_with_faults`] with an explicit executor mode for the
/// in-world machines (clMPI engines, queue executors), overriding the
/// `SIM_EXEC_MODE` default — the scale harness pins [`simtime::ExecMode::Events`]
/// (and the oracle) regardless of the environment.
pub fn run_himeno_with_faults_mode(
    variant: Variant,
    cfg: HimenoConfig,
    plan: FaultPlan,
    mode: simtime::ExecMode,
) -> HimenoResult {
    let cluster = cfg.sys.cluster.clone();
    let nodes = cfg.nodes;
    let cfg = Arc::new(cfg);
    let interior_global: usize = cfg.size.interior_points();
    let iters = cfg.iters;
    let res = run_world_faulty_mode(cluster, nodes, plan, mode, move |p: Process| {
        rank_main(variant, &cfg, p)
    });
    // Per-rank outputs: (gosa, checksum, comp, comm, loop_ns, faults).
    let gosa: f64 = res.outputs.iter().map(|o| o.0).sum();
    let checksum: f64 = res.outputs.iter().map(|o| o.1).sum();
    let comp_ns = res.outputs.iter().map(|o| o.2).max().unwrap_or(0);
    let comm_ns = res.outputs.iter().map(|o| o.3).max().unwrap_or(0);
    let elapsed_ns = res.outputs.iter().map(|o| o.4).max().unwrap_or(1).max(1);
    let transfer_faults = res
        .outputs
        .iter()
        .fold(clmpi::FaultStats::default(), |acc, o| acc.merge(o.5));
    let flops = FLOPS_PER_POINT * interior_global as f64 * iters as f64;
    HimenoResult {
        gflops: flops / elapsed_ns as f64, // flops/ns == Gflop/s
        elapsed_ns,
        gosa,
        checksum,
        comp_ns,
        comm_ns,
        trace: res.trace,
        fault_counts: res.fault_counts,
        transfer_faults,
        sched_events: res.events,
    }
}

type RankOut = (f64, f64, SimNs, SimNs, SimNs, clmpi::FaultStats);

fn rank_main(variant: Variant, cfg: &HimenoConfig, p: Process) -> RankOut {
    let rank = p.rank();
    let slab = Slab::new(cfg, rank);
    let rt = ClMpi::new(&p, cfg.sys.clone());
    let stats = rt.enable_stats();
    if let Some(s) = cfg.strategy {
        rt.set_forced_strategy(Some(s));
    }
    let ctx = rt.context().clone();
    // Initialize both pressure buffers from the identical global grid.
    let start = Slab::global_start(cfg, rank);
    let init = crate::grid::init_planes(cfg.size, start - 1, start + slab.n + 1);
    let bufs = [
        ctx.create_buffer(slab.slab_bytes()),
        ctx.create_buffer(slab.slab_bytes()),
    ];
    for b in &bufs {
        b.store(0, minimpi::datatype::f32_as_bytes(&init)).unwrap();
    }
    let gosa_acc: Arc<Vec<Mutex<f64>>> =
        Arc::new((0..cfg.iters).map(|_| Mutex::new(0.0)).collect());

    // Warm-up alignment, then the timed loop.
    p.comm.barrier(&p.actor);
    let t0 = p.actor.now_ns();
    let (comp_ns, comm_ns) = match variant {
        Variant::Serial => run_serial(cfg, &p, &rt, &slab, &bufs, &gosa_acc),
        Variant::HandOptimized => run_hand(cfg, &p, &rt, &slab, &bufs, &gosa_acc),
        Variant::ClMpi => run_clmpi(cfg, &p, &rt, &slab, &bufs, &gosa_acc, false),
        Variant::ClMpiBlocked => run_clmpi(cfg, &p, &rt, &slab, &bufs, &gosa_acc, true),
        Variant::GpuAwareMpi => run_gpu_aware(cfg, &p, &rt, &slab, &bufs, &gosa_acc),
    };
    rt.shutdown(&p.actor);
    p.comm.barrier(&p.actor);
    let loop_ns = p.actor.now_ns() - t0;

    // Validation data: final field lives in bufs[iters % 2] (the last
    // "new"), interior planes only.
    let final_buf = &bufs[cfg.iters % 2];
    let checksum = final_buf.read(|d| {
        let f = d.as_f32();
        let plane = slab.mj * slab.mk;
        let mut sum = 0.0f64;
        for i in 1..=slab.n {
            for j in 1..slab.mj - 1 {
                for k in 1..slab.mk - 1 {
                    sum += f[i * plane + j * slab.mk + k].abs() as f64;
                }
            }
        }
        sum
    });
    let gosa = *gosa_acc[cfg.iters - 1].lock();
    (gosa, checksum, comp_ns, comm_ns, loop_ns, stats.faults())
}

/// Fig. 1 structure: kernel, halo reads, MPI, halo writes — serialized.
fn run_serial(
    cfg: &HimenoConfig,
    p: &Process,
    rt: &ClMpi,
    slab: &Slab,
    bufs: &[Buffer; 2],
    gosa: &Arc<Vec<Mutex<f64>>>,
) -> (SimNs, SimNs) {
    let q = rt.context().create_queue(0, format!("r{}q0", p.rank()));
    q.set_trace(p.comm.world().trace().clone(), format!("r{}.gpu", p.rank()));
    let stage = HostBuffer::pinned(slab.plane_bytes);
    let (mut comp, mut comm) = (0, 0);
    for t in 0..cfg.iters {
        let (old, new) = (&bufs[t % 2], &bufs[(t + 1) % 2]);
        let k0 = p.actor.now_ns();
        let e = enqueue_half_kernel(
            &q,
            "jacobi",
            old,
            new,
            slab,
            1,
            slab.n + 1,
            gosa.clone(),
            t,
            &[],
        );
        e.wait(&p.actor);
        comp += p.actor.now_ns() - k0;
        let c0 = p.actor.now_ns();
        // Exchange the freshly-written buffer's boundary planes.
        host_exchange(p, &q, new, slab, slab.down, 1, 0, TAG_DOWN, TAG_UP, &stage);
        host_exchange(
            p,
            &q,
            new,
            slab,
            slab.up,
            slab.n,
            slab.n + 1,
            TAG_UP,
            TAG_DOWN,
            &stage,
        );
        comm += p.actor.now_ns() - c0;
    }
    q.finish(&p.actor);
    (comp, comm)
}

/// Fig. 2 structure: two queues, host-managed overlap. Phase 1 computes
/// the first half while the host exchanges the other half's halo (on the
/// *old* buffer); phase 2 computes the second half while exchanging the
/// first half's product (on the *new* buffer).
fn run_hand(
    cfg: &HimenoConfig,
    p: &Process,
    rt: &ClMpi,
    slab: &Slab,
    bufs: &[Buffer; 2],
    gosa: &Arc<Vec<Mutex<f64>>>,
) -> (SimNs, SimNs) {
    let rank = p.rank();
    let even = rank.is_multiple_of(2);
    let q0 = rt.context().create_queue(0, format!("r{rank}q0"));
    let q1 = rt.context().create_queue(0, format!("r{rank}q1"));
    q0.set_trace(p.comm.world().trace().clone(), format!("r{rank}.gpu0"));
    q1.set_trace(p.comm.world().trace().clone(), format!("r{rank}.gpu1"));
    let stage0 = HostBuffer::pinned(slab.plane_bytes);
    let stage1 = HostBuffer::pinned(slab.plane_bytes);
    // Cross-queue ordering events from the previous iteration.
    let mut e_first_prev: Option<Event> = None;
    let mut e_second_prev: Option<Event> = None;
    for t in 0..cfg.iters {
        let (old, new) = (&bufs[t % 2], &bufs[(t + 1) % 2]);
        if slab.n < 2 {
            // Degenerate slab (0 or 1 interior plane): `ha == 1` leaves
            // no independent half — the whole slab is one kernel that
            // reads *both* ghost planes, so the phase-1 exchange must
            // fully precede it instead of overlapping with it. The
            // per-edge protocol (old-buffer edges in phase 1, new-buffer
            // edges in phase 2, by parity) is unchanged, so a 2-plane
            // overlap slab neighboring a 1-plane slab still pairs.
            if even {
                host_exchange(
                    p, &q1, old, slab, slab.down, 1, 0, TAG_DOWN, TAG_UP, &stage1,
                );
            } else {
                host_exchange(
                    p,
                    &q1,
                    old,
                    slab,
                    slab.up,
                    slab.n,
                    slab.n + 1,
                    TAG_UP,
                    TAG_DOWN,
                    &stage1,
                );
            }
            let e = enqueue_half_kernel(
                &q0,
                "jacobi",
                old,
                new,
                slab,
                1,
                slab.n + 1,
                gosa.clone(),
                t,
                &[],
            );
            e.wait(&p.actor);
            if even {
                host_exchange(
                    p,
                    &q0,
                    new,
                    slab,
                    slab.up,
                    slab.n,
                    slab.n + 1,
                    TAG_UP,
                    TAG_DOWN,
                    &stage0,
                );
            } else {
                host_exchange(
                    p, &q0, new, slab, slab.down, 1, 0, TAG_DOWN, TAG_UP, &stage0,
                );
            }
            e_first_prev = Some(e.clone());
            e_second_prev = Some(e);
            continue;
        }
        let waits_first: Vec<Event> = e_second_prev.iter().cloned().collect();
        let mut waits_second: Vec<Event> = e_first_prev.iter().cloned().collect();
        // Phase 1: first-half kernel on q0; host exchanges the second
        // half's halo of `old` through q1 (which serializes after the
        // previous second-half kernel).
        let e_first = if even {
            enqueue_half_kernel(
                &q0,
                "jacobi A",
                old,
                new,
                slab,
                slab.ha,
                slab.n + 1,
                gosa.clone(),
                t,
                &waits_first,
            )
        } else {
            enqueue_half_kernel(
                &q0,
                "jacobi B",
                old,
                new,
                slab,
                1,
                slab.ha,
                gosa.clone(),
                t,
                &waits_first,
            )
        };
        if even {
            // B's halo: bottom ghost of `old` from the down neighbor.
            host_exchange(
                p, &q1, old, slab, slab.down, 1, 0, TAG_DOWN, TAG_UP, &stage1,
            );
        } else {
            // A's halo: top ghost of `old` from the up neighbor.
            host_exchange(
                p,
                &q1,
                old,
                slab,
                slab.up,
                slab.n,
                slab.n + 1,
                TAG_UP,
                TAG_DOWN,
                &stage1,
            );
        }
        // Phase 2: second-half kernel on q1; host exchanges the first
        // half's product (boundary of `new`) through q0.
        // Gate the second kernel on the first: a single compute engine
        // dispatches kernels in issue order on real GPUs, and the overlap
        // scheme relies on phase 1 executing first.
        waits_second.push(e_first.clone());
        let e_second = if even {
            enqueue_half_kernel(
                &q1,
                "jacobi B",
                old,
                new,
                slab,
                1,
                slab.ha,
                gosa.clone(),
                t,
                &waits_second,
            )
        } else {
            enqueue_half_kernel(
                &q1,
                "jacobi A",
                old,
                new,
                slab,
                slab.ha,
                slab.n + 1,
                gosa.clone(),
                t,
                &waits_second,
            )
        };
        if even {
            host_exchange(
                p,
                &q0,
                new,
                slab,
                slab.up,
                slab.n,
                slab.n + 1,
                TAG_UP,
                TAG_DOWN,
                &stage0,
            );
        } else {
            host_exchange(
                p, &q0, new, slab, slab.down, 1, 0, TAG_DOWN, TAG_UP, &stage0,
            );
        }
        e_first_prev = Some(e_first);
        e_second_prev = Some(e_second);
    }
    q0.finish(&p.actor);
    q1.finish(&p.actor);
    (0, 0)
}

/// Fig. 6 structure: one in-order queue, every dependency expressed as an
/// event, all calls non-blocking; the host thread only calls `clFinish`
/// at the end of each iteration.
fn run_clmpi(
    cfg: &HimenoConfig,
    p: &Process,
    rt: &ClMpi,
    slab: &Slab,
    bufs: &[Buffer; 2],
    gosa: &Arc<Vec<Mutex<f64>>>,
    block_each_iter: bool,
) -> (SimNs, SimNs) {
    let rank = p.rank();
    let even = rank.is_multiple_of(2);
    let q = rt.context().create_queue(0, format!("r{rank}q"));
    q.set_trace(p.comm.world().trace().clone(), format!("r{rank}.gpu"));
    // The face datatype, committed once per rank: the plane's interior
    // (mj−2)×(mk−2) f32 window at starts (1,1) — the only bytes the
    // neighbor's stencil reads.
    let face: Option<(CommittedType, PackMode)> = match cfg.halo {
        HaloMode::Plane => None,
        HaloMode::Datatype(mode) => Some((
            DerivedType::Subarray {
                elem: 4,
                sizes: vec![slab.mj, slab.mk],
                subsizes: vec![slab.mj - 2, slab.mk - 2],
                starts: vec![1, 1],
            }
            .commit()
            .expect("interior face type"),
            mode,
        )),
    };
    let face = face.as_ref();
    // Events of the previous iteration's exchanges and kernels.
    let mut e_phase2_xfer: Vec<Event> = Vec::new(); // gate next first kernel
    let mut e_first_prev: Option<Event> = None;
    let mut e_second_prev: Option<Event> = None;
    for t in 0..cfg.iters {
        let (old, new) = (&bufs[t % 2], &bufs[(t + 1) % 2]);
        if slab.n < 2 {
            // Degenerate slab: the whole slab is one kernel reading both
            // ghost planes, so the phase-1 exchange is enqueued *first*
            // and the kernel waits on it (plus the previous phase-2
            // exchange, which filled the other ghost). The per-edge
            // protocol by parity is the same as the overlap path, so
            // mixed worlds pair correctly; only the intra-rank ordering
            // changes. The previous whole-slab kernel produced the plane
            // x1 sends and last read the ghost x1 overwrites, so it is
            // x1's gate.
            let gate1: Vec<Event> = e_first_prev.iter().cloned().collect();
            let x1 = if even {
                exchange_clmpi(
                    rt, &q, p, old, slab, slab.down, 1, 0, TAG_DOWN, &gate1, face,
                )
            } else {
                exchange_clmpi(
                    rt,
                    &q,
                    p,
                    old,
                    slab,
                    slab.up,
                    slab.n,
                    slab.n + 1,
                    TAG_UP,
                    &gate1,
                    face,
                )
            };
            let mut w: Vec<Event> = std::mem::take(&mut e_phase2_xfer);
            w.extend(x1.iter().cloned());
            w.extend(e_first_prev.iter().cloned());
            let e = enqueue_half_kernel(
                &q,
                "jacobi",
                old,
                new,
                slab,
                1,
                slab.n + 1,
                gosa.clone(),
                t,
                &w,
            );
            let gate2 = vec![e.clone()];
            let x2 = if even {
                exchange_clmpi(
                    rt,
                    &q,
                    p,
                    new,
                    slab,
                    slab.up,
                    slab.n,
                    slab.n + 1,
                    TAG_UP,
                    &gate2,
                    face,
                )
            } else {
                exchange_clmpi(
                    rt, &q, p, new, slab, slab.down, 1, 0, TAG_DOWN, &gate2, face,
                )
            };
            e_phase2_xfer = x2;
            e_first_prev = Some(e.clone());
            e_second_prev = Some(e);
            q.finish(&p.actor);
            if block_each_iter {
                Event::wait_all(&x1, &p.actor);
                Event::wait_all(&e_phase2_xfer, &p.actor);
            }
            continue;
        }
        // Phase 1 kernel: waits the previous phase-2 exchange (it filled
        // the ghost this kernel reads / sent the planes it overwrites)
        // and the previous second-half kernel (internal boundary plane).
        let mut w1: Vec<Event> = std::mem::take(&mut e_phase2_xfer);
        w1.extend(e_second_prev.iter().cloned());
        let e_first = if even {
            enqueue_half_kernel(
                &q,
                "jacobi A",
                old,
                new,
                slab,
                slab.ha,
                slab.n + 1,
                gosa.clone(),
                t,
                &w1,
            )
        } else {
            enqueue_half_kernel(
                &q,
                "jacobi B",
                old,
                new,
                slab,
                1,
                slab.ha,
                gosa.clone(),
                t,
                &w1,
            )
        };
        // Phase 1 exchange on `old` (the other half's halo), gated on the
        // previous iteration's second-half kernel which produced the data.
        let gate1: Vec<Event> = e_second_prev.iter().cloned().collect();
        let x1 = if even {
            exchange_clmpi(
                rt, &q, p, old, slab, slab.down, 1, 0, TAG_DOWN, &gate1, face,
            )
        } else {
            exchange_clmpi(
                rt,
                &q,
                p,
                old,
                slab,
                slab.up,
                slab.n,
                slab.n + 1,
                TAG_UP,
                &gate1,
                face,
            )
        };
        // Phase 2 kernel: waits the phase-1 exchange (its ghost/planes)
        // and the previous first-half kernel (internal boundary).
        let mut w2: Vec<Event> = x1.clone();
        w2.extend(e_first_prev.iter().cloned());
        let e_second = if even {
            enqueue_half_kernel(
                &q,
                "jacobi B",
                old,
                new,
                slab,
                1,
                slab.ha,
                gosa.clone(),
                t,
                &w2,
            )
        } else {
            enqueue_half_kernel(
                &q,
                "jacobi A",
                old,
                new,
                slab,
                slab.ha,
                slab.n + 1,
                gosa.clone(),
                t,
                &w2,
            )
        };
        // Phase 2 exchange on `new` (first half's freshly computed
        // boundary), gated on this iteration's first kernel.
        let gate2 = vec![e_first.clone()];
        let x2 = if even {
            exchange_clmpi(
                rt,
                &q,
                p,
                new,
                slab,
                slab.up,
                slab.n,
                slab.n + 1,
                TAG_UP,
                &gate2,
                face,
            )
        } else {
            exchange_clmpi(
                rt, &q, p, new, slab, slab.down, 1, 0, TAG_DOWN, &gate2, face,
            )
        };
        e_phase2_xfer = x2;
        e_first_prev = Some(e_first);
        e_second_prev = Some(e_second);
        // The host's only synchronization: drain the queue (kernels); the
        // exchanges keep flowing on their event chains (paper Fig. 4(c)).
        q.finish(&p.actor);
        if block_each_iter {
            // Ablation: serialize the host on every exchange completion.
            Event::wait_all(&x1, &p.actor);
            Event::wait_all(&e_phase2_xfer, &p.actor);
        }
    }
    // Drain the final exchanges before validation.
    Event::wait_all(&e_phase2_xfer, &p.actor);
    (0, 0)
}

/// One clMPI halo exchange: `enqueue_send_buffer` of the boundary plane
/// and `enqueue_recv_buffer` into the ghost plane, both gated on `gate`.
/// Returns the exchange's events (empty if no neighbor).
#[allow(clippy::too_many_arguments)]
pub(crate) fn exchange_clmpi(
    rt: &ClMpi,
    q: &CommandQueue,
    p: &Process,
    buf: &Buffer,
    slab: &Slab,
    neighbor: Option<usize>,
    send_plane: usize,
    ghost_plane: usize,
    dir_tag: Tag,
    gate: &[Event],
    face: Option<&(CommittedType, PackMode)>,
) -> Vec<Event> {
    let Some(nb) = neighbor else {
        return Vec::new();
    };
    // Tag convention: a plane travelling down is sent with TAG_DOWN and
    // received (from the up-neighbor's perspective) with TAG_DOWN too.
    let (send_tag, recv_tag) = if dir_tag == TAG_DOWN {
        (TAG_DOWN, TAG_UP)
    } else {
        (TAG_UP, TAG_DOWN)
    };
    if let Some((ty, mode)) = face {
        // Datatype path: ship only the plane's interior window; the
        // runtime packs it per `mode` (host gather / device pack kernel).
        let es = rt
            .enqueue_send_datatype(
                q,
                buf,
                false,
                slab.plane_off(send_plane),
                ty,
                *mode,
                nb,
                send_tag,
                gate,
                &p.actor,
            )
            .expect("send boundary face");
        let er = rt
            .enqueue_recv_datatype(
                q,
                buf,
                false,
                slab.plane_off(ghost_plane),
                ty,
                *mode,
                nb,
                recv_tag,
                gate,
                &p.actor,
            )
            .expect("recv ghost face");
        return vec![es, er];
    }
    let es = rt
        .enqueue_send_buffer(
            q,
            buf,
            false,
            slab.plane_off(send_plane),
            slab.plane_bytes,
            nb,
            send_tag,
            gate,
            &p.actor,
        )
        .expect("send boundary plane");
    let er = rt
        .enqueue_recv_buffer(
            q,
            buf,
            false,
            slab.plane_off(ghost_plane),
            slab.plane_bytes,
            nb,
            recv_tag,
            gate,
            &p.actor,
        )
        .expect("recv ghost plane");
    vec![es, er]
}

/// GPU-aware-MPI comparator (paper §II): the same two-queue overlap
/// structure as the hand-optimized code, but halo exchanges are direct
/// MPI-on-device-buffer calls ([`ClMpi::gpu_aware_send`] /
/// [`ClMpi::gpu_aware_recv`]) — no manual staging, optimized transfer
/// paths — executed by the host thread, which must first wait on the
/// producing kernel's event (the serialization clMPI's events remove).
fn run_gpu_aware(
    cfg: &HimenoConfig,
    p: &Process,
    rt: &ClMpi,
    slab: &Slab,
    bufs: &[Buffer; 2],
    gosa: &Arc<Vec<Mutex<f64>>>,
) -> (SimNs, SimNs) {
    let rank = p.rank();
    let even = rank.is_multiple_of(2);
    let q0 = rt.context().create_queue(0, format!("r{rank}q0"));
    let q1 = rt.context().create_queue(0, format!("r{rank}q1"));
    let mut e_first_prev: Option<Event> = None;
    let mut e_second_prev: Option<Event> = None;
    for t in 0..cfg.iters {
        let (old, new) = (&bufs[t % 2], &bufs[(t + 1) % 2]);
        if slab.n < 2 {
            // Degenerate slab: exchange first (the whole-slab kernel
            // reads both ghosts), same per-edge protocol as the overlap
            // path. The previous kernel produced the plane this exchange
            // sends, so the host waits on it first (§II's limitation).
            if let Some(e) = &e_first_prev {
                e.wait(&p.actor);
            }
            if even {
                exchange_gpu_aware(rt, &q1, p, old, slab, slab.down, 1, 0, TAG_DOWN);
            } else {
                exchange_gpu_aware(rt, &q1, p, old, slab, slab.up, slab.n, slab.n + 1, TAG_UP);
            }
            let e = enqueue_half_kernel(
                &q0,
                "jacobi",
                old,
                new,
                slab,
                1,
                slab.n + 1,
                gosa.clone(),
                t,
                &[],
            );
            e.wait(&p.actor);
            if even {
                exchange_gpu_aware(rt, &q0, p, new, slab, slab.up, slab.n, slab.n + 1, TAG_UP);
            } else {
                exchange_gpu_aware(rt, &q0, p, new, slab, slab.down, 1, 0, TAG_DOWN);
            }
            e_first_prev = Some(e.clone());
            e_second_prev = Some(e);
            continue;
        }
        let waits_first: Vec<Event> = e_second_prev.iter().cloned().collect();
        let e_first = if even {
            enqueue_half_kernel(
                &q0,
                "jacobi A",
                old,
                new,
                slab,
                slab.ha,
                slab.n + 1,
                gosa.clone(),
                t,
                &waits_first,
            )
        } else {
            enqueue_half_kernel(
                &q0,
                "jacobi B",
                old,
                new,
                slab,
                1,
                slab.ha,
                gosa.clone(),
                t,
                &waits_first,
            )
        };
        // Phase-1 exchange on `old`: the host must wait for the kernel
        // that produced the boundary plane (§II's limitation), then the
        // GPU-aware MPI calls transfer device memory directly.
        if let Some(e) = &e_second_prev {
            e.wait(&p.actor);
        }
        if even {
            exchange_gpu_aware(rt, &q1, p, old, slab, slab.down, 1, 0, TAG_DOWN);
        } else {
            exchange_gpu_aware(rt, &q1, p, old, slab, slab.up, slab.n, slab.n + 1, TAG_UP);
        }
        let mut waits_second: Vec<Event> = e_first_prev.iter().cloned().collect();
        waits_second.push(e_first.clone());
        let e_second = if even {
            enqueue_half_kernel(
                &q1,
                "jacobi B",
                old,
                new,
                slab,
                1,
                slab.ha,
                gosa.clone(),
                t,
                &waits_second,
            )
        } else {
            enqueue_half_kernel(
                &q1,
                "jacobi A",
                old,
                new,
                slab,
                slab.ha,
                slab.n + 1,
                gosa.clone(),
                t,
                &waits_second,
            )
        };
        // Phase-2 exchange on `new`: wait the first kernel, then transfer.
        e_first.wait(&p.actor);
        if even {
            exchange_gpu_aware(rt, &q0, p, new, slab, slab.up, slab.n, slab.n + 1, TAG_UP);
        } else {
            exchange_gpu_aware(rt, &q0, p, new, slab, slab.down, 1, 0, TAG_DOWN);
        }
        e_first_prev = Some(e_first);
        e_second_prev = Some(e_second);
    }
    q0.finish(&p.actor);
    q1.finish(&p.actor);
    (0, 0)
}

/// One GPU-aware halo exchange: blocking device-buffer send + receive on
/// the host thread.
#[allow(clippy::too_many_arguments)]
fn exchange_gpu_aware(
    rt: &ClMpi,
    q: &CommandQueue,
    p: &Process,
    buf: &Buffer,
    slab: &Slab,
    neighbor: Option<usize>,
    send_plane: usize,
    ghost_plane: usize,
    dir_tag: Tag,
) {
    let Some(nb) = neighbor else { return };
    let (send_tag, recv_tag) = if dir_tag == TAG_DOWN {
        (TAG_DOWN, TAG_UP)
    } else {
        (TAG_UP, TAG_DOWN)
    };
    rt.gpu_aware_send(
        &p.actor,
        q,
        buf,
        slab.plane_off(send_plane),
        slab.plane_bytes,
        nb,
        send_tag,
    )
    .expect("gpu-aware send");
    rt.gpu_aware_recv(
        &p.actor,
        q,
        buf,
        slab.plane_off(ghost_plane),
        slab.plane_bytes,
        nb,
        recv_tag,
    )
    .expect("gpu-aware recv");
}
