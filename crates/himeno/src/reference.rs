//! Single-threaded reference solver used to validate every distributed
//! variant.

use crate::grid::{copy_shell, jacobi_sweep, GridSize, HimenoGrid};

/// Result of the reference run: final pressure field and last residual.
pub struct ReferenceResult {
    /// Final pressure field (`mimax × mjmax × mkmax`).
    pub p: Vec<f32>,
    /// `gosa` of the final iteration.
    pub gosa: f64,
}

/// Run `iters` Jacobi sweeps on a full grid, double-buffered exactly like
/// the distributed variants (so results are bitwise comparable).
pub fn reference_jacobi(size: GridSize, iters: usize) -> ReferenceResult {
    let (mi, mj, mk) = size.dims();
    let g = HimenoGrid::new(size);
    let mut old = g.p.clone();
    let mut new = g.p.clone(); // carries boundary values from init
    let mut gosa = 0.0;
    for _ in 0..iters {
        gosa = jacobi_sweep(&old, &mut new, mj, mk, 1, mi - 1);
        copy_shell(&old, &mut new, mj, mk, 0, mi);
        std::mem::swap(&mut old, &mut new);
    }
    ReferenceResult { p: old, gosa }
}

/// Order-independent checksum of a pressure field (sum of |p| as f64).
pub fn checksum(p: &[f32]) -> f64 {
    p.iter().map(|&x| x.abs() as f64).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_converges() {
        let r1 = reference_jacobi(GridSize::Custom(17, 17, 33), 1);
        let r10 = reference_jacobi(GridSize::Custom(17, 17, 33), 10);
        assert!(r10.gosa < r1.gosa, "residual shrinks with iterations");
    }

    #[test]
    fn reference_is_deterministic() {
        let a = reference_jacobi(GridSize::Xs, 3);
        let b = reference_jacobi(GridSize::Xs, 3);
        assert_eq!(a.p, b.p);
        assert_eq!(a.gosa, b.gosa);
    }

    #[test]
    fn checksum_positive_and_stable() {
        let r = reference_jacobi(GridSize::Custom(9, 9, 9), 2);
        let c = checksum(&r.p);
        assert!(c > 0.0);
        assert_eq!(c, checksum(&r.p));
    }
}
