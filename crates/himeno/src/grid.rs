//! Grid sizes, initialization, and the stencil definition.

/// Floating-point operations per stencil point (the benchmark's own
/// accounting, used for its MFLOPS metric).
pub const FLOPS_PER_POINT: f64 = 34.0;

/// Jacobi relaxation factor.
pub const OMEGA: f32 = 0.8;

/// Device-memory traffic per stencil point in bytes: the 14
/// coefficient/state arrays are streamed (13 reads + 1 write of 4 bytes
/// each) and the 19-point neighborhood of `p` re-fetches planes with
/// imperfect cache reuse. 200 B/point calibrates the computation-to-
/// communication balance so that, on the Cichlid preset, one halo
/// exchange hides under a half-domain kernel at 2 nodes but not at 4 —
/// reproducing exactly where the paper's Fig. 9(a) comp/comm ratio
/// crosses 1 (and hence where the clMPI-vs-hand-optimized gap appears).
pub const BYTES_PER_POINT: usize = 200;

/// Standard Himeno grid sizes (`mimax × mjmax × mkmax`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GridSize {
    /// 33 × 33 × 65 — test size.
    Xs,
    /// 65 × 65 × 129.
    S,
    /// 129 × 129 × 257 — the size evaluated in the paper (Fig. 9).
    M,
    /// 257 × 257 × 513.
    L,
    /// Custom (mimax, mjmax, mkmax).
    Custom(usize, usize, usize),
}

impl GridSize {
    /// (mimax, mjmax, mkmax).
    pub fn dims(self) -> (usize, usize, usize) {
        match self {
            GridSize::Xs => (33, 33, 65),
            GridSize::S => (65, 65, 129),
            GridSize::M => (129, 129, 257),
            GridSize::L => (257, 257, 513),
            GridSize::Custom(i, j, k) => (i, j, k),
        }
    }

    /// Number of interior (updated) points.
    pub fn interior_points(self) -> usize {
        let (mi, mj, mk) = self.dims();
        (mi - 2) * (mj - 2) * (mk - 2)
    }

    /// Parse "xs"/"s"/"m"/"l" (case-insensitive).
    pub fn by_name(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "xs" => Some(GridSize::Xs),
            "s" => Some(GridSize::S),
            "m" => Some(GridSize::M),
            "l" => Some(GridSize::L),
            _ => None,
        }
    }
}

/// A full (undecomposed) grid with the benchmark's standard coefficients.
/// The distributed variants slice plane ranges out of this to initialize
/// their slabs, so every implementation starts from identical data.
pub struct HimenoGrid {
    /// Grid dimensions.
    pub size: GridSize,
    /// Pressure, `mimax` planes of `mjmax × mkmax`.
    pub p: Vec<f32>,
}

impl HimenoGrid {
    /// Standard initialization: `p = (i²)/(mimax−1)²` along the first
    /// axis; coefficients are the benchmark constants (a=1,1,1,1/6; b=0;
    /// c=1; bnd=1; wrk1=0) and are generated on the fly by the kernels.
    pub fn new(size: GridSize) -> Self {
        let (mi, mj, mk) = size.dims();
        let denom = ((mi - 1) * (mi - 1)) as f32;
        let mut p = vec![0.0f32; mi * mj * mk];
        for i in 0..mi {
            let v = (i * i) as f32 / denom;
            p[i * mj * mk..(i + 1) * mj * mk].fill(v);
        }
        HimenoGrid { size, p }
    }

    /// Copy planes `[lo, hi)` of `p` (each `mjmax × mkmax` floats).
    pub fn planes(&self, lo: usize, hi: usize) -> &[f32] {
        let (_, mj, mk) = self.size.dims();
        &self.p[lo * mj * mk..hi * mj * mk]
    }
}

/// Initialize planes `[lo, hi)` of the standard grid directly, without
/// materializing the whole field: bit-identical to
/// `HimenoGrid::new(size).planes(lo, hi)` but O(slab) in memory, which is
/// what keeps 256-rank scale runs (each rank holding a few planes of a
/// 17 MB grid) feasible in one process.
pub fn init_planes(size: GridSize, lo: usize, hi: usize) -> Vec<f32> {
    let (mi, mj, mk) = size.dims();
    let denom = ((mi - 1) * (mi - 1)) as f32;
    let mut p = vec![0.0f32; (hi - lo) * mj * mk];
    for i in lo..hi {
        let v = (i * i) as f32 / denom;
        p[(i - lo) * mj * mk..(i - lo + 1) * mj * mk].fill(v);
    }
    p
}

/// One Jacobi sweep over planes `i_lo..i_hi` (local indices, interior
/// only) of a slab shaped `(planes, mjmax, mkmax)`: reads `old`, writes
/// `new` for those planes, and returns the partial `gosa`.
///
/// This is the exact Himeno update with the benchmark's constant
/// coefficients folded in (a0..a2 = 1, a3 = 1/6, b = 0, c = 1, bnd = 1,
/// wrk1 = 0), which leaves the full 19-point data dependence intact while
/// avoiding 11 all-constant array streams in host memory. The *device
/// time* model still charges the full array traffic via
/// [`BYTES_PER_POINT`].
pub fn jacobi_sweep(
    old: &[f32],
    new: &mut [f32],
    mj: usize,
    mk: usize,
    i_lo: usize,
    i_hi: usize,
) -> f64 {
    const A3: f32 = 1.0 / 6.0;
    let plane = mj * mk;
    let mut gosa = 0.0f64;
    for i in i_lo..i_hi {
        for j in 1..mj - 1 {
            let base = i * plane + j * mk;
            for k in 1..mk - 1 {
                let c = base + k;
                let s0 = old[c + plane]          // a0 * p[i+1][j][k]
                    + old[c + mk]                // a1 * p[i][j+1][k]
                    + old[c + 1]                 // a2 * p[i][j][k+1]
                    + old[c - plane]             // c0 * p[i-1][j][k]
                    + old[c - mk]                // c1 * p[i][j-1][k]
                    + old[c - 1]; // c2 * p[i][j][k-1]
                let ss = s0 * A3 - old[c]; // (s0*a3 - p) * bnd
                gosa += (ss * ss) as f64;
                new[c] = old[c] + OMEGA * ss;
            }
        }
    }
    gosa
}

/// Copy the non-interior shell of `old` into `new` for planes
/// `i_lo..i_hi` (the stencil leaves boundaries untouched; with double
/// buffering they must be carried forward explicitly once).
pub fn copy_shell(old: &[f32], new: &mut [f32], mj: usize, mk: usize, i_lo: usize, i_hi: usize) {
    let plane = mj * mk;
    for i in i_lo..i_hi {
        let (o, n) = (
            &old[i * plane..(i + 1) * plane],
            &mut new[i * plane..(i + 1) * plane],
        );
        // j = 0 and j = mj-1 rows.
        n[..mk].copy_from_slice(&o[..mk]);
        n[(mj - 1) * mk..].copy_from_slice(&o[(mj - 1) * mk..]);
        // k = 0 and k = mk-1 columns.
        for j in 1..mj - 1 {
            n[j * mk] = o[j * mk];
            n[j * mk + mk - 1] = o[j * mk + mk - 1];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dims_and_interior_counts() {
        assert_eq!(GridSize::M.dims(), (129, 129, 257));
        assert_eq!(GridSize::Xs.interior_points(), 31 * 31 * 63);
        assert_eq!(GridSize::by_name("m"), Some(GridSize::M));
        assert_eq!(GridSize::by_name("xl"), None);
    }

    #[test]
    fn init_is_quadratic_in_i() {
        let g = HimenoGrid::new(GridSize::Xs);
        let (mi, mj, mk) = GridSize::Xs.dims();
        assert_eq!(g.p[0], 0.0);
        let last = g.p[(mi - 1) * mj * mk];
        assert!((last - 1.0).abs() < 1e-6, "p at i=mimax-1 is 1.0");
        let mid = g.p[(mi / 2) * mj * mk];
        assert!(mid > 0.0 && mid < 1.0);
    }

    #[test]
    fn sweep_reduces_gosa_over_iterations() {
        let size = GridSize::Custom(17, 17, 17);
        let (mi, mj, mk) = size.dims();
        let g = HimenoGrid::new(size);
        let mut old = g.p.clone();
        let mut new = g.p.clone();
        let mut last = f64::MAX;
        for _ in 0..5 {
            let gosa = jacobi_sweep(&old, &mut new, mj, mk, 1, mi - 1);
            assert!(gosa < last, "residual decreases");
            last = gosa;
            std::mem::swap(&mut old, &mut new);
        }
        assert!(last > 0.0);
    }

    #[test]
    fn sweep_touches_only_interior() {
        let size = GridSize::Custom(9, 9, 9);
        let (mi, mj, mk) = size.dims();
        let g = HimenoGrid::new(size);
        let mut new = vec![-1.0f32; g.p.len()];
        jacobi_sweep(&g.p, &mut new, mj, mk, 1, mi - 1);
        // Boundary untouched (still -1), interior written.
        assert_eq!(new[0], -1.0);
        assert_ne!(new[(mj + 1) * mk + 1], -1.0);
    }

    #[test]
    fn init_planes_matches_full_grid() {
        let size = GridSize::Xs;
        let g = HimenoGrid::new(size);
        let (mi, _, _) = size.dims();
        for (lo, hi) in [(0, 2), (5, 9), (mi - 3, mi)] {
            assert_eq!(init_planes(size, lo, hi), g.planes(lo, hi));
        }
    }

    #[test]
    fn copy_shell_preserves_boundaries() {
        let size = GridSize::Custom(5, 5, 5);
        let (mi, mj, mk) = size.dims();
        let g = HimenoGrid::new(size);
        let mut new = vec![0.0f32; g.p.len()];
        copy_shell(&g.p, &mut new, mj, mk, 0, mi);
        assert_eq!(new[1], g.p[1]); // j=0 row copied
        assert_eq!(new[(2 * mj) * mk + 3], g.p[(2 * mj) * mk + 3]);
        assert_eq!(new[(2 * mj + 2) * mk + 2], 0.0, "interior not copied");
    }
}
