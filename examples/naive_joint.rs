//! The paper's Fig. 1: *conventional* joint programming of MPI and
//! OpenCL, written directly against `minimpi` + `minicl` with no clMPI.
//! Kernel → blocking read → `MPI_Sendrecv` → blocking write, everything
//! serialized through the host thread. Compare with
//! `examples/quickstart.rs`.
//!
//! Run: `cargo run --release --example naive_joint`

use clmpi::SystemConfig;
use minicl::{Context, HostBuffer};
use minimpi::run_world_sized;
use simtime::fmt_ns;

fn main() {
    const BYTES: usize = 1 << 20;
    let sys = SystemConfig::cichlid();
    let res = run_world_sized(sys.cluster.clone(), 2, |p| {
        let sys = SystemConfig::cichlid();
        let ctx = Context::new(p.clock().clone(), &[sys.device]);
        let q = ctx.create_queue(0, format!("rank{}", p.rank()));
        let buf = ctx.create_buffer(BYTES);
        let host = HostBuffer::pinned(BYTES);
        let peer = 1 - p.rank();

        // Kernel producing this rank's data.
        let me = p.rank() as f32;
        let b = buf.clone();
        let evt = q.enqueue_kernel("produce", 500_000, &[], move || {
            b.write(|d| d.as_f32_mut().iter_mut().for_each(|x| *x = me + 1.0));
        });

        // Fig. 1 body: the host blocks at every step to serialize the
        // dependent MPI and OpenCL operations.
        q.enqueue_read_buffer(&p.actor, &buf, true, 0, BYTES, &host, 0, &[evt])
            .expect("read");
        println!(
            "rank {}: host blocked until read done at t={}",
            p.rank(),
            fmt_ns(p.actor.now_ns())
        );
        let got = p
            .comm
            .sendrecv(&p.actor, peer, 1, &host.to_vec(), Some(peer), Some(1));
        host.fill_from(&got.data);
        q.enqueue_write_buffer(&p.actor, &buf, true, 0, BYTES, &host, 0, &[])
            .expect("write");
        let sample = buf.read(|d| d.as_f32()[0]);
        println!(
            "rank {}: exchange complete at t={}, got peer value {}",
            p.rank(),
            fmt_ns(p.actor.now_ns()),
            sample
        );
        assert_eq!(sample, peer as f32 + 1.0);
    });
    println!(
        "total (everything serialized): {} — compare quickstart's event-driven version",
        fmt_ns(res.elapsed_ns)
    );
}
