//! A small nanopowder growth run (paper §V-D) comparing the baseline and
//! clMPI coefficient-distribution paths, with validation against the
//! single-threaded reference.
//!
//! Run: `cargo run --release --example nanopowder_demo`

use clmpi::SystemConfig;
use nanopowder::{reference_simulation, run_nanopowder, NanoConfig, NanoVariant};

fn main() {
    let sections = 1080; // ≈4.7 MB of coefficients per step per node
    let steps = 3;
    let cfg = |nodes| NanoConfig {
        sections,
        steps,
        sys: SystemConfig::ricc(),
        nodes,
    };
    println!(
        "nanopowder: K={sections} sections ({:.1} MB coefficients/step/node), {steps} steps, RICC\n",
        (sections * sections * 4) as f64 / 1e6
    );
    println!(
        "{:>6}  {:>14}  {:>14}  {:>8}",
        "nodes", "baseline ms", "clMPI ms", "gain"
    );
    let reference = reference_simulation(sections, steps);
    for nodes in [1usize, 2, 4] {
        let base = run_nanopowder(NanoVariant::Baseline, cfg(nodes));
        let cl = run_nanopowder(NanoVariant::ClMpi, cfg(nodes));
        assert_eq!(base.final_n, reference, "baseline physics validated");
        assert_eq!(cl.final_n, reference, "clMPI physics validated");
        println!(
            "{:>6}  {:>14.2}  {:>14.2}  {:>7.1}%",
            nodes,
            base.step_ns as f64 / 1e6,
            cl.step_ns as f64 / 1e6,
            (base.step_ns as f64 / cl.step_ns as f64 - 1.0) * 100.0
        );
    }
    println!("\nBoth variants produce bitwise-identical concentrations (asserted);");
    println!("clMPI hides the host→device stage of the 42 MB/step coefficient");
    println!("distribution under the network transfer (pipelined MPI_CL_MEM path).");
}
