//! Rank failure and recovery — the ULFM-style fault-tolerance stack
//! end to end.
//!
//! Runs the distributed Himeno solve three times on a 4-node RICC
//! cluster: fault-free, with one node killed mid-loop, and with two
//! nodes killed at the same instant. Each faulty run detects the dead
//! rank(s) through chunk-deadline timeouts, classifies the failure
//! against the fabric's ground truth, revokes the communicator, agrees
//! on the survivor set, shrinks, restores the newest durable checkpoint
//! from shared storage (or restarts from initial conditions when none
//! survived), and recomputes to the same residual as the fault-free
//! run. Every number printed is virtual-time derived: a second run
//! prints identical output.
//!
//! Run: `cargo run --release --example rank_failure`

use clmpi::obs::ObsSummary;
use clmpi::SystemConfig;
use himeno::{reference_jacobi, run_himeno_recover, GridSize, RecoverConfig};
use minimpi::FaultPlan;
use simtime::fmt_ns;

fn main() {
    let cfg = || RecoverConfig {
        size: GridSize::S,
        iters: 4,
        sys: SystemConfig::ricc(),
        nodes: 4,
        ckpt_every: 2,
    };

    // Fault-free baseline: bounds the kill instants and the goodput.
    let base = run_himeno_recover(cfg(), FaultPlan::none());
    let reference = reference_jacobi(GridSize::S, 4);
    println!("Himeno S on 4 RICC ranks, checkpoint every 2 iterations");
    println!(
        "  fault-free   {}  gosa {:.6e}  (reference {:.6e})",
        fmt_ns(base.elapsed_ns),
        base.gosa,
        reference.gosa
    );

    // One node dies mid-loop. The survivors shrink 4 → 3 and resume —
    // from a durable checkpoint slot if one exists, else from scratch.
    // Scan forward (deterministically) for the latest kill instant that
    // still forces a recovery; late instants land after the survivors'
    // last reduction and complete cleanly.
    let t_kill = (1..8)
        .rev()
        .map(|x| base.elapsed_ns * x / 8)
        .find(|&t| run_himeno_recover(cfg(), FaultPlan::none().with_node_down(2, t)).recovered)
        .expect("some kill instant forces recovery");
    let one = run_himeno_recover(cfg(), FaultPlan::none().with_node_down(2, t_kill));
    assert!(one.recovered, "survivors must shrink and resume");
    assert!(
        (one.gosa - base.gosa).abs() / base.gosa < 1e-9,
        "recovered residual matches fault-free"
    );
    println!(
        "  one kill     {}  gosa {:.6e}  survivors {}  resumed from {}",
        fmt_ns(one.elapsed_ns),
        one.gosa,
        one.survivors,
        one.resumed_from
            .map_or("initial state".to_string(), |s| format!("slot {s}")),
    );

    // Two nodes die at the same instant: same protocol, 4 → 2.
    let two = run_himeno_recover(
        cfg(),
        FaultPlan::none()
            .with_node_down(1, t_kill)
            .with_node_down(3, t_kill),
    );
    assert!(two.recovered && two.survivors == 2);
    println!(
        "  two kills    {}  gosa {:.6e}  survivors {}",
        fmt_ns(two.elapsed_ns),
        two.gosa,
        two.survivors,
    );

    // The recovery protocol leaves an audit trail in the op-span trace.
    let summary = ObsSummary::from_trace(&one.trace);
    let total =
        |f: fn(&clmpi::obs::RankSummary) -> u64| -> u64 { summary.ranks.values().map(f).sum() };
    println!("\nrecovery counters (one-kill run):");
    println!("  proc failures classified  {}", total(|r| r.proc_failures));
    println!("  communicator revokes      {}", total(|r| r.revokes));
    println!("  communicator shrinks      {}", total(|r| r.shrinks));
    println!("  checkpoint restores       {}", total(|r| r.restores));
    println!(
        "\nrecovery overhead: one kill +{}, two kills +{}",
        fmt_ns(one.elapsed_ns.saturating_sub(base.elapsed_ns)),
        fmt_ns(two.elapsed_ns.saturating_sub(base.elapsed_ns)),
    );
}
