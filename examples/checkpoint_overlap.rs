//! Future-work extension demo (paper §VI): file I/O as OpenCL commands.
//! A device checkpoint streams to simulated node-local storage *while*
//! the next compute kernel runs — the same event-driven overlap clMPI
//! gives communication.
//!
//! Run: `cargo run --release --example checkpoint_overlap`

use clmpi::{ClMpi, SimStorage, SystemConfig};
use minimpi::run_world_sized;
use simtime::fmt_ns;

fn main() {
    const STATE: usize = 16 << 20; // 16 MiB of simulation state
    run_world_sized(SystemConfig::ricc().cluster.clone(), 1, |p| {
        let rt = ClMpi::new(&p, SystemConfig::ricc());
        let q = rt.context().create_queue(0, "q");
        let storage = SimStorage::node_local_disk(p.clock().clone());
        let state = rt.context().create_buffer(STATE);

        // Serialized: compute, then checkpoint, per step.
        let t0 = p.actor.now_ns();
        for step in 0..3 {
            let ek = q.enqueue_kernel("step", 40_000_000, &[], || {});
            ek.wait(&p.actor);
            let ew = rt
                .enqueue_write_file(
                    &q,
                    &state,
                    0,
                    STATE,
                    &storage,
                    format!("ckpt{step}"),
                    &[],
                    &p.actor,
                )
                .unwrap();
            ew.wait(&p.actor);
        }
        let serialized = p.actor.now_ns() - t0;

        // Overlapped: the checkpoint of step N races step N+1's kernel;
        // only the final checkpoint is waited.
        let t1 = p.actor.now_ns();
        let mut pending = Vec::new();
        for step in 0..3 {
            let ek = q.enqueue_kernel("step", 40_000_000, &[], || {});
            let ew = rt
                .enqueue_write_file(
                    &q,
                    &state,
                    0,
                    STATE,
                    &storage,
                    format!("ov{step}"),
                    std::slice::from_ref(&ek),
                    &p.actor,
                )
                .unwrap();
            ek.wait(&p.actor);
            pending.push(ew);
        }
        for e in pending {
            e.wait(&p.actor);
        }
        let overlapped = p.actor.now_ns() - t1;

        println!("3 steps × (40 ms compute + 16 MiB checkpoint to ~200 MB/s disk):");
        println!(
            "  checkpoint-then-compute (serialized): {}",
            fmt_ns(serialized)
        );
        println!(
            "  checkpoint-under-compute (events):    {}",
            fmt_ns(overlapped)
        );
        println!(
            "  saved: {} ({:.0}%)",
            fmt_ns(serialized - overlapped),
            (1.0 - overlapped as f64 / serialized as f64) * 100.0
        );
        assert!(overlapped < serialized);
        rt.shutdown(&p.actor);
    });
}
