//! Fault injection — the failure-aware transfer runtime end to end.
//!
//! Attaches a seeded, deterministic `FaultPlan` to the simulated fabric
//! (drops + latency jitter on the clMPI data plane only), runs a
//! pipelined device→device transfer through the loss, and prints the
//! retry/degradation counters plus the `net.fault` trace lane. Running
//! it twice prints identical numbers: message fate is a pure function of
//! the plan seed and the flow coordinates, never of thread timing.
//!
//! Run: `cargo run --release --example fault_injection`

use clmpi::{data_plane_faults, ClMpi, RetryPolicy, SystemConfig, TransferStrategy};
use minimpi::{run_world_faulty, FaultPlan};
use simtime::fmt_ns;

fn main() {
    const BYTES: usize = 8 << 20;
    // 5% chunk loss + up to 50 µs arrival jitter, scoped to clMPI data
    // tags so barriers and control traffic stay reliable.
    let plan = data_plane_faults(FaultPlan::drops(42, 0.05).with_jitter(50_000));
    let sys = SystemConfig::ricc();
    let res = run_world_faulty(sys.cluster.clone(), 2, plan, |p| {
        let rt = ClMpi::new(&p, SystemConfig::ricc());
        rt.set_forced_strategy(Some(TransferStrategy::Pipelined(1 << 18)));
        rt.set_retry_policy(RetryPolicy::new(5, 200_000));
        let stats = rt.enable_stats();
        let q = rt.context().create_queue(0, format!("rank{}", p.rank()));
        let buf = rt.context().create_buffer(BYTES);
        if p.rank() == 0 {
            buf.store(0, &vec![7u8; BYTES]).unwrap();
            let e = rt
                .enqueue_send_buffer(&q, &buf, false, 0, BYTES, 1, 1, &[], &p.actor)
                .expect("enqueue send");
            e.wait(&p.actor);
            assert!(!e.is_failed(), "retries must absorb 5% loss");
        } else {
            let e = rt
                .enqueue_recv_buffer(&q, &buf, false, 0, BYTES, 0, 1, &[], &p.actor)
                .expect("enqueue recv");
            e.wait(&p.actor);
            assert_eq!(buf.load(0, BYTES).unwrap(), vec![7u8; BYTES], "data intact");
        }
        rt.shutdown(&p.actor);
        (p.rank(), stats.faults(), rt.is_degraded())
    });

    println!("8 MiB pipelined transfer over a 5% lossy link (seed 42):");
    println!("  virtual elapsed      {}", fmt_ns(res.elapsed_ns));
    println!(
        "  fabric counters      delivered={} dropped={}",
        res.fault_counts.delivered,
        res.fault_counts.dropped()
    );
    for (rank, faults, degraded) in &res.outputs {
        println!(
            "  rank {rank} runtime       chunk_drops={} retries={} degraded={} failures={} (latched: {degraded})",
            faults.chunk_drops, faults.retries, faults.degraded, faults.failures
        );
    }
    println!("\nfault trace lane:");
    for s in res
        .trace
        .spans()
        .iter()
        .filter(|s| s.lane.contains("fault"))
    {
        println!(
            "  [{} .. {}] {:<12} {}",
            fmt_ns(s.start),
            fmt_ns(s.end),
            s.lane,
            s.label
        );
    }
    println!("\nRe-run me: every line above is identical each time — the");
    println!("fault plan is deterministic in (seed, src, dst, tag, flow #).");
}
