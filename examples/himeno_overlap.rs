//! Fig. 2 vs Fig. 6 side by side: the hand-optimized (two-queue,
//! host-managed) and clMPI (event-chained) Himeno implementations on the
//! same configuration, with GFLOPS and rendered timelines.
//!
//! Run: `cargo run --release --example himeno_overlap`

use clmpi::SystemConfig;
use himeno::{run_himeno, GridSize, HimenoConfig, Variant};

fn main() {
    let cfg = |_| HimenoConfig {
        size: GridSize::S,
        iters: 3,
        sys: SystemConfig::cichlid(),
        nodes: 4,
        strategy: None,
        halo: Default::default(),
    };
    println!("Himeno S, Cichlid, 4 nodes — communication is exposed here (Fig. 9(a) regime)\n");
    for variant in [Variant::Serial, Variant::HandOptimized, Variant::ClMpi] {
        let r = run_himeno(variant, cfg(()));
        println!(
            "{:>15}: {:6.2} GFLOPS  ({:.2} ms/iter, gosa {:.6e})",
            variant.name(),
            r.gflops,
            r.elapsed_ns as f64 / 3.0 / 1e6,
            r.gosa
        );
        if variant == Variant::ClMpi {
            println!("\nclMPI timeline (kernels + runtime communication lanes):");
            println!("{}", r.trace.render_ascii(96));
        }
    }
    println!("All three variants produce bitwise-identical pressure fields;");
    println!("only the orchestration differs (see crates/himeno/src/run.rs).");
}
