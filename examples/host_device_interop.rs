//! The paper's Fig. 7: MPI interoperability. Rank 0 (host memory) posts
//! `MPI_Irecv` with `MPI_CL_MEM`, wraps the request in an OpenCL event
//! with `clCreateEventFromMPIRequest`, runs a kernel *during* the
//! transfer, and gates a `clEnqueueWriteBuffer` on the event. Rank 1's
//! device sends with `clEnqueueSendBuffer`.
//!
//! Run: `cargo run --release --example host_device_interop`

use clmpi::{ClMpi, SystemConfig};
use minimpi::run_world_sized;
use simtime::fmt_ns;

fn main() {
    const BYTES: usize = 2 << 20;
    let sys = SystemConfig::ricc();
    run_world_sized(sys.cluster.clone(), 2, |p| {
        let rt = ClMpi::new(&p, SystemConfig::ricc());
        let q = rt.context().create_queue(0, format!("rank{}", p.rank()));
        if p.rank() == 0 {
            // Receiving data from a remote device into host memory.
            let req = rt.irecv_cl(&p.actor, 1, 0, BYTES);
            // Executing a kernel during the data transfer.
            let ek = q.enqueue_kernel("overlapped", 700_000, &[], || {});
            // Executing this only after the communication completes.
            let buf = rt.context().create_buffer(BYTES);
            let host = req.data.clone();
            let ew = q
                .enqueue_write_buffer(
                    &p.actor,
                    &buf,
                    false,
                    0,
                    BYTES,
                    &host,
                    0,
                    &[req.event.clone(), ek.clone()],
                )
                .expect("gated write");
            ew.wait(&p.actor);
            let pk = ek.profiling().expect("kernel profiled");
            let pw = ew.profiling().expect("write profiled");
            println!(
                "rank 0: kernel ran {} → {} DURING the inter-node transfer",
                fmt_ns(pk.started),
                fmt_ns(pk.completed)
            );
            println!(
                "rank 0: write started {} — after the MPI_CL_MEM receive completed at {}",
                fmt_ns(pw.started),
                fmt_ns(req.event.completion_time().expect("recv done"))
            );
            assert!(pw.started >= req.event.completion_time().unwrap());
            assert_eq!(buf.load(0, 8).unwrap(), vec![9u8; 8]);
        } else {
            // Device side: fill a buffer and send it to the remote host.
            let buf = rt.context().create_buffer(BYTES);
            buf.store(0, &vec![9u8; BYTES]).unwrap();
            rt.enqueue_send_buffer(&q, &buf, true, 0, BYTES, 0, 0, &[], &p.actor)
                .expect("send");
            println!("rank 1: device buffer sent to the remote host");
        }
        // Demonstrate the reverse direction too: host 0 sends to device 1
        // with MPI_CL_MEM semantics.
        if p.rank() == 0 {
            let data = vec![5u8; 4096];
            rt.send_cl(&p.actor, 1, 1, &data);
        } else {
            let buf = rt.context().create_buffer(4096);
            rt.enqueue_recv_buffer(&q, &buf, true, 0, 4096, 0, 1, &[], &p.actor)
                .expect("recv");
            assert_eq!(buf.load(0, 4096).unwrap(), vec![5u8; 4096]);
            println!("rank 1: host→device MPI_CL_MEM send landed in device memory");
        }
        rt.shutdown(&p.actor);
    });
}
