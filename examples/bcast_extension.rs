//! Collective-extension demo (paper §IV-C/§VI): a collective
//! communication command for device buffers, event-chained like
//! everything else. A 4-rank pipelined broadcast feeds each rank's
//! kernel as soon as its own copy lands.
//!
//! Run: `cargo run --release --example bcast_extension`

use clmpi::{ClMpi, SystemConfig};
use minimpi::run_world_sized;
use simtime::fmt_ns;

fn main() {
    const BYTES: usize = 4 << 20;
    let res = run_world_sized(SystemConfig::ricc().cluster.clone(), 4, |p| {
        let rt = ClMpi::new(&p, SystemConfig::ricc());
        let q = rt.context().create_queue(0, format!("r{}", p.rank()));
        let buf = rt.context().create_buffer(BYTES);
        if p.rank() == 0 {
            let b = buf.clone();
            b.write(|d| d.as_f32_mut().iter_mut().for_each(|x| *x = 2.5));
        }
        let eb = rt
            .enqueue_bcast_buffer(&q, &buf, 0, BYTES, 0, 0, &[], &p.actor)
            .unwrap();
        // Each rank's consumer kernel waits only for the broadcast event.
        let b2 = buf.clone();
        let ek = q.enqueue_kernel("consume", 2_000_000, &[eb], move || {
            assert!(b2.read(|d| d.as_f32().iter().all(|&x| x == 2.5)));
        });
        ek.wait(&p.actor);
        let started = ek.profiling().unwrap().started;
        rt.shutdown(&p.actor);
        started
    });
    println!("4 MiB device-buffer broadcast from rank 0 (default tuning: pipelined ring):");
    for (r, t) in res.outputs.iter().enumerate() {
        println!("  rank {r}: consumer kernel started at {}", fmt_ns(*t));
    }
    println!("The event chain starts each rank's kernel the moment its copy lands,");
    println!("with no rank ever blocking its host thread. See examples/collectives.rs");
    println!("for the full collective surface (forced algorithms, allreduce, trace dump).");
}
