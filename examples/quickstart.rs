//! Quickstart — the paper's Fig. 5: two remote devices exchange a buffer
//! with `clEnqueueSendBuffer`/`clEnqueueRecvBuffer`, no explicit MPI calls
//! and no host-thread blocking.
//!
//! Run: `cargo run --release --example quickstart`

use clmpi::{ClMpi, SystemConfig};
use minimpi::run_world_sized;
use simtime::fmt_ns;

fn main() {
    const BYTES: usize = 4 << 20;
    let sys = SystemConfig::ricc();
    let res = run_world_sized(sys.cluster.clone(), 2, |p| {
        let rt = ClMpi::new(&p, SystemConfig::ricc());
        let q = rt.context().create_queue(0, format!("rank{}", p.rank()));
        let buf = rt.context().create_buffer(BYTES);
        if p.rank() == 0 {
            // Fill the device buffer with a kernel, then send it to rank 1
            // — the send waits on the kernel through its event, not
            // through the host.
            let b = buf.clone();
            let ek = q.enqueue_kernel("fill", 1_000_000, &[], move || {
                b.write(|d| {
                    d.as_f32_mut()
                        .iter_mut()
                        .enumerate()
                        .for_each(|(i, x)| *x = i as f32)
                });
            });
            let es = rt
                .enqueue_send_buffer(&q, &buf, false, 0, BYTES, 1, 7, &[ek], &p.actor)
                .expect("enqueue send");
            println!(
                "rank 0: enqueued kernel+send, host is free at t={}",
                fmt_ns(p.actor.now_ns())
            );
            es.wait(&p.actor);
            println!("rank 0: send complete at t={}", fmt_ns(p.actor.now_ns()));
        } else {
            let er = rt
                .enqueue_recv_buffer(&q, &buf, false, 0, BYTES, 0, 7, &[], &p.actor)
                .expect("enqueue recv");
            er.wait(&p.actor);
            let sample = buf.read(|d| d.as_f32()[12345]);
            println!(
                "rank 1: received {} MiB at t={}, f32[12345] = {}",
                BYTES >> 20,
                fmt_ns(p.actor.now_ns()),
                sample
            );
            assert_eq!(sample, 12345.0);
        }
        rt.shutdown(&p.actor);
    });
    println!("total virtual time: {}", fmt_ns(res.elapsed_ns));
}
