//! Observability — the structured span pipeline end to end.
//!
//! Runs a two-rank overlap workload (a kernel on each GPU while a
//! pipelined device→device transfer crosses a mildly lossy fabric),
//! then shows everything `clmpi::obs` derives from the one trace:
//!
//!   * the per-rank summary (ops, queue depth, drops/retries, bytes)
//!     and its FNV-1a fingerprint — the value determinism tests compare,
//!   * the compute-vs-communication overlap table (Fig. 4, quantified),
//!   * a Chrome `trace_events` export written to `observability.trace.json`
//!     (open it in `chrome://tracing` or https://ui.perfetto.dev).
//!
//! Run: `cargo run --release --example observability`

use clmpi::{data_plane_faults, obs, ClMpi, ObsSummary, SystemConfig, TransferStrategy};
use minimpi::{run_world_faulty, FaultPlan};
use simtime::fmt_ns;

fn main() {
    const BYTES: usize = 2 << 20;
    let plan = data_plane_faults(FaultPlan::drops(42, 0.02));
    let sys = SystemConfig::ricc();
    let res = run_world_faulty(sys.cluster.clone(), 2, plan, |p| {
        let rt = ClMpi::new(&p, SystemConfig::ricc());
        rt.set_forced_strategy(Some(TransferStrategy::Pipelined(1 << 18)));
        let q = rt.context().create_queue(0, format!("r{}", p.rank()));
        // Attach the world trace to the queue so kernels land on a
        // per-rank compute lane next to the runtime's host/net/dev lanes.
        q.set_trace(p.comm.world().trace().clone(), format!("r{}.gpu", p.rank()));
        let buf = rt.context().create_buffer(BYTES);
        let k = q.enqueue_kernel("stencil", 2_000_000, &[], || {});
        let e = if p.rank() == 0 {
            buf.store(0, &vec![3u8; BYTES]).unwrap();
            rt.enqueue_send_buffer(
                &q,
                &buf,
                false,
                0,
                BYTES,
                1,
                1,
                std::slice::from_ref(&k),
                &p.actor,
            )
            .expect("enqueue send")
        } else {
            rt.enqueue_recv_buffer(
                &q,
                &buf,
                false,
                0,
                BYTES,
                0,
                1,
                std::slice::from_ref(&k),
                &p.actor,
            )
            .expect("enqueue recv")
        };
        // The next iteration's compute is independent of the exchange —
        // the overlap table below shows the transfer hiding behind it.
        let k2 = q.enqueue_kernel("stencil.next", 2_000_000, std::slice::from_ref(&k), || {});
        e.wait(&p.actor);
        k2.wait(&p.actor);
        assert!(!e.is_failed());
        rt.shutdown(&p.actor);
        // Live counters agree with the span-derived summary below.
        rt.obs_counters()
    });

    println!("2 MiB pipelined exchange behind a 2 ms kernel (seed 42):");
    println!("  virtual elapsed   {}", fmt_ns(res.elapsed_ns));
    for (rank, c) in res.outputs.iter().enumerate() {
        println!(
            "  rank {rank} counters   submitted={} completed={} failed={} peak_depth={}",
            c.submitted, c.completed, c.failed, c.max_in_flight
        );
    }

    let summary = ObsSummary::from_trace(&res.trace);
    println!("\nper-rank span summary (a pure function of the trace):");
    for (rank, r) in &summary.ranks {
        println!(
            "  rank {rank}: ops={} ok={} drops={} retries={} sent={}B recv={}B",
            r.ops, r.ops_ok, r.chunk_drops, r.chunk_retries, r.bytes_sent, r.bytes_received
        );
    }
    println!(
        "  summary fingerprint: {:#018x} (stable across reruns)",
        summary.hash()
    );

    println!("\ncompute-vs-communication overlap (quantitative Fig. 4):");
    print!("{}", summary.overlap.render());

    let trace_json = obs::chrome_trace(&res.trace);
    obs::validate_json(&trace_json).expect("well-formed trace_events JSON");
    std::fs::write("observability.trace.json", &trace_json).expect("write trace");
    println!("\nChrome trace written to observability.trace.json —");
    println!("open chrome://tracing (or ui.perfetto.dev) and load it to see");
    println!("the op.send envelope over its chunk/retry children per rank.");
}
