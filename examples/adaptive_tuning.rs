//! The "automatic selection mechanism" of paper §V-B, taken one step
//! further: an online tuner probes pinned/mapped/pipelined once per
//! message-size class and locks in the measured winner — so the same
//! binary picks mapped on Cichlid and pinned on RICC with zero
//! configuration.
//!
//! Run: `cargo run --release --example adaptive_tuning`

use std::sync::Arc;

use clmpi::{AdaptiveSelector, ClMpi, SystemConfig};
use minimpi::run_world_sized;

fn tune_on(mk: fn() -> SystemConfig) {
    let sys = mk();
    let name = sys.cluster.name;
    let res = run_world_sized(sys.cluster.clone(), 2, move |p| {
        let rt = ClMpi::new(&p, mk());
        let sel = Arc::new(AdaptiveSelector::for_system(rt.config()));
        rt.set_adaptive(Some(sel.clone()));
        let stats = rt.enable_stats();
        let q = rt.context().create_queue(0, format!("r{}", p.rank()));
        let size = 256 << 10;
        let buf = rt.context().create_buffer(size);
        for i in 0..8 {
            if p.rank() == 0 {
                rt.enqueue_send_buffer(&q, &buf, true, 0, size, 1, i, &[], &p.actor)
                    .unwrap();
            } else {
                rt.enqueue_recv_buffer(&q, &buf, true, 0, size, 0, i, &[], &p.actor)
                    .unwrap();
            }
            p.comm.barrier(&p.actor);
        }
        rt.shutdown(&p.actor);
        (p.rank() == 0).then(|| (sel.winner_for(size).map(|s| s.name()), stats.report()))
    });
    let (winner, report) = res.outputs[0].clone().expect("rank 0 reports");
    println!(
        "== {name}: tuner converged on {:?} for 256 KiB transfers",
        winner
    );
    println!("{report}");
}

fn main() {
    println!("probing pinned / mapped / pipelined once each, then locking the winner:\n");
    tune_on(SystemConfig::cichlid);
    tune_on(SystemConfig::ricc);
    println!("(matches the paper's per-system policy: mapped on Cichlid, pinned on RICC)");
}
