//! Device-buffer collectives (paper §IV-C "future extensions", realized):
//! a pipelined ring broadcast and a ring allreduce on a non-power-of-two
//! world, driven exactly like any other clMPI command — enqueue, get an
//! event, chain kernels on it.
//!
//! After the run the example dumps the structured trace: each rank's
//! `op.bcast` / `op.allreduce` envelope with its `chunk` / `forward` /
//! `reduce` children, so you can see the store-and-forward pipeline
//! (rank k forwarding chunk i while chunk i+1 is still in flight).
//!
//! Run: `cargo run --release --example collectives`

use clmpi::{ClMpi, ObsSummary, ReduceOp, SystemConfig};
use minimpi::{run_world_sized, Process};
use simtime::fmt_ns;

const BYTES: usize = 8 << 20; // big enough that default tuning picks the ring
const COUNT: usize = 4096; // f64 elements in the allreduce

fn main() {
    const NODES: usize = 5; // deliberately not a power of two
    let res = run_world_sized(SystemConfig::ricc().cluster.clone(), NODES, |p: Process| {
        let rt = ClMpi::new(&p, SystemConfig::ricc());
        let q = rt.context().create_queue(0, format!("r{}", p.rank()));

        // --- Pipelined broadcast: 8 MiB of coefficients from rank 0.
        let coeff = rt.context().create_buffer(BYTES);
        if p.rank() == 0 {
            coeff.store(0, &vec![7u8; BYTES]).unwrap();
        }
        p.comm.barrier(&p.actor);
        let t0 = p.actor.now_ns();
        let eb = rt
            .enqueue_bcast_buffer(&q, &coeff, 0, BYTES, 0, 1, &[], &p.actor)
            .unwrap();
        // Each rank's consumer kernel is gated only on its own copy.
        let c2 = coeff.clone();
        let ek = q.enqueue_kernel("consume", 1_500_000, std::slice::from_ref(&eb), move || {
            assert!(c2.read(|d| d.as_slice().iter().all(|&b| b == 7)));
        });
        ek.wait(&p.actor);
        let bcast_ns = p.actor.now_ns() - t0;

        // --- Ring allreduce: every rank contributes, every rank gets
        // the sum, straight in device memory.
        let acc = rt.context().create_buffer(COUNT * 8);
        let mine: Vec<u8> = (0..COUNT)
            .flat_map(|i| ((p.rank() + i) as f64).to_le_bytes())
            .collect();
        acc.store(0, &mine).unwrap();
        let ea = rt
            .enqueue_allreduce_buffer(&q, &acc, 0, COUNT, ReduceOp::Sum, 2, &[], &p.actor)
            .unwrap();
        ea.wait(&p.actor);
        let got = acc.load(0, 16).unwrap();
        let first = f64::from_le_bytes(got[..8].try_into().unwrap());
        // Σ over ranks of (rank + 0) = 0+1+2+3+4.
        assert_eq!(first, 10.0);

        rt.shutdown(&p.actor);
        (bcast_ns, first)
    });

    println!("8 MiB broadcast + 4096-element allreduce across 5 RICC ranks:");
    for (rank, (t, sum0)) in res.outputs.iter().enumerate() {
        println!(
            "  rank {rank}: bcast+consume done in {}, allreduce[0] = {sum0}",
            fmt_ns(*t)
        );
    }

    // --- The structured trace: collective envelopes and their children.
    println!("\ncollective op spans (envelope ▸ children):");
    let ops = res.trace.ops();
    for o in &ops {
        if o.cat == "op.bcast" || o.cat == "op.allreduce" {
            let kids: Vec<&simtime::OpSpan> =
                ops.iter().filter(|c| c.parent == Some(o.id)).collect();
            let forwards = kids.iter().filter(|c| c.cat == "forward").count();
            let chunks = kids.iter().filter(|c| c.cat == "chunk").count();
            let reduces = kids.iter().filter(|c| c.cat == "reduce").count();
            println!(
                "  {:<10} {:<18} {:>9}B  {} → {}  chunks={chunks} forwards={forwards} reduces={reduces}",
                o.track,
                o.name,
                o.bytes,
                fmt_ns(o.start),
                fmt_ns(o.end),
            );
        }
    }

    let summary = ObsSummary::from_trace(&res.trace);
    println!("\nper-rank collective payload bytes (op.bcast/op.allreduce/op.reduce):");
    for (rank, r) in &summary.ranks {
        println!(
            "  rank {rank}: coll_bytes={}B  (p2p wire: sent={}B recv={}B)",
            r.coll_bytes, r.bytes_sent, r.bytes_received
        );
    }
    println!(
        "  summary fingerprint: {:#018x} (byte-stable across reruns)",
        summary.hash()
    );
}
